(* Fault plans, engine crash/stall semantics, and the post-run
   auditor: the tier-1 face of experiments E12/E13 (DESIGN.md §7). *)

open Helpers
module Policy = Sched.Policy
module Engine = Sched.Engine
module Explore = Sched.Explore
module Fault = Sched.Fault
module Audit = Harness.Audit

(* ---------------- Plans and generators ------------------------------ *)

let plan_tests =
  [
    tc "constructors and validate reject bad arguments" (fun () ->
        fails_with ~substring:"negative tid" (fun () ->
            Fault.crash ~tid:(-1) ~at_step:5);
        fails_with ~substring:"duration" (fun () ->
            Fault.stall ~tid:0 ~from_step:5 ~duration:0);
        fails_with ~substring:"out of range" (fun () ->
            Fault.validate ~threads:2 [ Fault.crash ~tid:2 ~at_step:5 ]);
        fails_with ~substring:"out of range" (fun () ->
            Engine.run ~threads:2
              ~faults:[ Fault.stall ~tid:7 ~from_step:0 ~duration:10 ]
              ~policy:(Policy.round_robin ())
              (fun _ -> ())));
    tc "dead_at / stalled_at / survivors semantics" (fun () ->
        let plan =
          [
            Fault.crash ~tid:1 ~at_step:10;
            Fault.stall ~tid:0 ~from_step:5 ~duration:3;
          ]
        in
        check_bool "alive before" false (Fault.dead_at plan ~step:9 ~tid:1);
        check_bool "dead at" true (Fault.dead_at plan ~step:10 ~tid:1);
        check_bool "dead after" true (Fault.dead_at plan ~step:999 ~tid:1);
        check_bool "not stalled before" false
          (Fault.stalled_at plan ~step:4 ~tid:0);
        check_bool "stalled inside" true
          (Fault.stalled_at plan ~step:7 ~tid:0);
        check_bool "resumed at end" false
          (Fault.stalled_at plan ~step:8 ~tid:0);
        check_bool "crashed tids" true (Fault.crashed_tids plan = [ 1 ]);
        check_bool "stalled threads survive" true
          (Fault.survivors ~threads:3 plan = [ 0; 2 ]));
    tc "generators are deterministic per seed and respect avoid"
      (fun () ->
        let gen seed =
          Fault.random_crashes ~avoid:[ 0 ] ~seed ~threads:6 ~victims:3
            ~window:(10, 50) ()
        in
        check_string "same seed, same plan"
          (Fault.to_string (gen 42))
          (Fault.to_string (gen 42));
        check_bool "different seeds differ" true
          (Fault.to_string (gen 1) <> Fault.to_string (gen 2));
        for seed = 0 to 30 do
          let plan = gen seed in
          Fault.validate ~threads:6 plan;
          let tids = List.map Fault.tid_of plan in
          check_bool "victims distinct" true
            (List.sort_uniq compare tids = List.sort compare tids);
          check_bool "avoid respected" false (List.mem 0 tids);
          List.iter
            (function
              | Fault.Crash { at_step; _ } ->
                  check_bool "within window" true
                    (at_step >= 10 && at_step <= 50)
              | Fault.Stall _ -> Alcotest.fail "crash generator made a stall")
            plan
        done);
  ]

(* ---------------- Engine semantics ---------------------------------- *)

let engine_tests =
  [
    tc "crash removes the fiber at its step without unwinding it"
      (fun () ->
        let survivor_done = ref false in
        let o =
          Engine.run ~threads:2
            ~faults:[ Fault.crash ~tid:0 ~at_step:10 ]
            ~policy:(Policy.round_robin ())
            (fun tid ->
              if tid = 0 then
                (* infinite loop: only a crash can stop it *)
                let c = Atomics.Primitives.make 0 in
                while true do
                  ignore (Atomics.Primitives.faa c 1)
                done
              else begin
                let c = Atomics.Primitives.make 0 in
                for _ = 1 to 20 do
                  ignore (Atomics.Primitives.faa c 1)
                done;
                survivor_done := true
              end)
        in
        check_bool "survivor finished" true !survivor_done;
        check_bool
          (Printf.sprintf "victim stopped by its crash step (%d)" o.steps.(0))
          true
          (o.steps.(0) <= 10);
        check_bool "victim ran at all before the crash" true
          (o.steps.(0) > 0));
    tc "stalled fiber is withheld, idle ticks fill the gap, it resumes"
      (fun () ->
        let done_ = Array.make 2 false in
        let o =
          Engine.run ~threads:2
            ~faults:[ Fault.stall ~tid:1 ~from_step:0 ~duration:40 ]
            ~policy:(Policy.round_robin ())
            (fun tid ->
              let c = Atomics.Primitives.make 0 in
              for _ = 1 to 5 do
                ignore (Atomics.Primitives.faa c 1)
              done;
              done_.(tid) <- true)
        in
        check_bool "both finished" true (Array.for_all Fun.id done_);
        (* thread 0 finishes well before step 40; the engine must then
           tick idly until thread 1 resumes *)
        check_bool "clock passed the stall window" true (o.total_steps >= 40);
        check_int "idle ticks are not recorded in the schedule"
          (o.steps.(0) + o.steps.(1))
          (Array.length o.schedule);
        check_bool "idle ticks happened" true
          (o.total_steps > Array.length o.schedule));
  ]

let replay_trace_test =
  tc "replaying a schedule under the same plan reproduces the trace"
    (fun () ->
      let trace = ref [] in
      let body tid =
        let c = Atomics.Primitives.make 0 in
        for _ = 1 to 8 do
          ignore (Atomics.Primitives.faa c 1);
          trace := tid :: !trace
        done
      in
      let faults =
        [
          Fault.crash ~tid:2 ~at_step:25;
          Fault.stall ~tid:1 ~from_step:5 ~duration:15;
        ]
      in
      let o1 =
        Engine.run ~threads:3 ~faults ~policy:(Policy.random ~seed:7) body
      in
      let t1 = !trace in
      trace := [];
      let o2 =
        Engine.run ~threads:3 ~faults ~policy:(Policy.replay o1.schedule)
          body
      in
      check_bool "same schedule" true (o1.schedule = o2.schedule);
      check_bool "same trace" true (t1 = !trace);
      check_int "same clock" o1.total_steps o2.total_steps)

(* ---------------- WFRC under crash: audit invariants ----------------- *)

(* Mirror of the experiment churn operation: replace the root's node
   with a fresh one, retiring the displaced node. *)
let churn mm ~root ~tid =
  Mm.enter_op mm ~tid;
  (match Mm.alloc mm ~tid with
  | b ->
      let old = Mm.deref mm ~tid root in
      let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
      if not (Value.is_null old) then begin
        Mm.release mm ~tid old;
        if ok then Mm.terminate mm ~tid old
      end;
      if not ok then Mm.terminate mm ~tid b;
      Mm.release mm ~tid b
  | exception (Mm.Out_of_memory | Mm.Out_of_nodes _) -> ());
  Mm.exit_op mm ~tid

(* One E12-shaped scenario: [threads-1] crashes mid-churn while the
   survivors keep working. Returns the instance, the crash victim and
   a cell recording a node handle the victim held when it died. *)
let crash_scenario ?(scheme = "wfrc") ~threads ~capacity ~ops ~at_step ~policy
    () =
  let cfg =
    Mm.config ~threads ~capacity ~num_links:1 ~num_data:1 ~num_roots:1 ()
  in
  let mm = mm_of scheme cfg in
  let root = Arena.root_addr (Mm.arena mm) 0 in
  let victim = threads - 1 in
  let held = ref 0 in
  let faults = [ Fault.crash ~tid:victim ~at_step ] in
  let body tid =
    if tid = victim then begin
      (* grab and hold a private reference, then churn until killed *)
      (match Mm.alloc mm ~tid with
      | p -> held := Value.handle p
      | exception Mm.Out_of_memory -> ());
      while true do
        churn mm ~root ~tid
      done
    end
    else
      for _ = 1 to ops do
        churn mm ~root ~tid
      done
  in
  let outcome =
    Engine.run ~max_steps:200_000 ~threads ~faults ~policy body
  in
  (mm, victim, !held, outcome)

let audit_tests =
  [
    tc "wfrc: a crashed thread's held node is never reclaimed" (fun () ->
        let mm, victim, held, _ =
          crash_scenario ~threads:3 ~capacity:24 ~ops:40 ~at_step:400
            ~policy:(Policy.random ~seed:11) ()
        in
        check_bool "victim recorded its held node" true (held > 0);
        (* the survivors churned long after the crash; the victim's
           private reference must have pinned its node throughout *)
        let c = Mm.custody mm in
        check_bool "held node is not in the free store" false
          c.Mm.free.(held);
        let r = Audit.run ~crashed:[ victim ] mm in
        check_bool
          ("audit accepts the run: " ^ Audit.to_string r)
          true (Audit.ok r);
        check_int "nothing leaked" 0 r.Audit.leaked;
        check_bool "the held node is accounted as crash-held" true
          (r.Audit.crash_held >= 1);
        check_bool "within the paper's loss envelope" true
          (r.Audit.crash_held <= r.Audit.loss_bound));
    tc "wfrc: audit is clean when nobody crashes" (fun () ->
        let cfg =
          Mm.config ~threads:2 ~capacity:16 ~num_links:1 ~num_data:1
            ~num_roots:1 ()
        in
        let mm = mm_of "wfrc" cfg in
        let root = Arena.root_addr (Mm.arena mm) 0 in
        ignore
          (Engine.run ~max_steps:100_000 ~threads:2
             ~policy:(Policy.random ~seed:3) (fun tid ->
               for _ = 1 to 30 do
                 churn mm ~root ~tid
               done));
        let r = Audit.run mm in
        check_bool ("clean: " ^ Audit.to_string r) true (Audit.ok r);
        check_int "no crash attribution without a crash" 0
          r.Audit.crash_held;
        check_int "zero loss bound without a crash" 0 r.Audit.loss_bound);
    tc "replayed fault plan reproduces the audit report bit-for-bit"
      (fun () ->
        let scenario policy =
          let mm, victim, _, outcome =
            crash_scenario ~threads:3 ~capacity:24 ~ops:24 ~at_step:250
              ~policy ()
          in
          (Audit.to_string (Audit.run ~crashed:[ victim ] mm), outcome)
        in
        let s1, o1 = scenario (Policy.random ~seed:77) in
        let s2, o2 = scenario (Policy.replay o1.schedule) in
        check_bool "same schedule" true (o1.schedule = o2.schedule);
        check_string "same audit report" s1 s2);
    tc "survivors stay within their own-step bound during a stall storm"
      (fun () ->
        let threads = 3 in
        let cfg =
          Mm.config ~threads ~capacity:24 ~num_links:1 ~num_data:1
            ~num_roots:1 ()
        in
        let mm = mm_of "wfrc" cfg in
        let root = Arena.root_addr (Mm.arena mm) 0 in
        let frozen = threads - 1 in
        let from_step = 60 and duration = 400 in
        let rec_ = Audit.Steps.create ~threads in
        ignore
          (Engine.run ~max_steps:100_000 ~threads
             ~faults:[ Fault.stall ~tid:frozen ~from_step ~duration ]
             ~policy:(Policy.random ~seed:5) (fun tid ->
               for _ = 1 to 12 do
                 Audit.Steps.around rec_ ~tid (fun () ->
                     churn mm ~root ~tid)
               done));
        let movers = [ 0; 1 ] in
        let worst =
          Audit.Steps.max_own_steps
            ~window:(from_step, from_step + duration)
            rec_ ~tids:movers
        in
        check_bool "survivors made progress during the storm" true
          (worst > 0);
        (* wfrc's per-operation work is bounded by a constant for fixed
           N; 200 own steps is far above the measured ceiling (~75 for
           N=4 in E13) but far below any retry-loop blowup *)
        check_bool
          (Printf.sprintf "own-step bound holds (%d)" worst)
          true (worst <= 200);
        (* the stalled thread resumed and finished, so the audit must
           be clean with no crash attribution *)
        let r = Audit.run mm in
        check_bool ("clean: " ^ Audit.to_string r) true (Audit.ok r));
    tc "Explore.random_sweep composes with a fault plan" (fun () ->
        let threads = 2 in
        let mk () =
          let cfg =
            Mm.config ~threads ~capacity:16 ~num_links:1 ~num_data:1
              ~num_roots:1 ()
          in
          let mm = mm_of "wfrc" cfg in
          let root = Arena.root_addr (Mm.arena mm) 0 in
          let body tid =
            if tid = 1 then
              while true do
                churn mm ~root ~tid
              done
            else
              for _ = 1 to 8 do
                churn mm ~root ~tid
              done
          in
          (body, fun () -> Audit.check (Audit.run ~crashed:[ 1 ] mm))
        in
        let r =
          Explore.random_sweep ~max_steps:100_000 ~threads ~runs:12 ~seed:21
            ~faults:[ Fault.crash ~tid:1 ~at_step:90 ]
            mk
        in
        match r.Explore.failure with
        | None -> check_int "all runs audited" 12 r.Explore.schedules_run
        | Some f ->
            Alcotest.failf "audit failed under sweep: %s at [%s]"
              (Printexc.to_string f.Explore.exn)
              (String.concat ";"
                 (List.map string_of_int (Array.to_list f.Explore.schedule))));
  ]

(* ---------------- Per-scheme loss envelopes -------------------------- *)

(* [Audit.envelope] pins the empirically-calibrated per-crash loss for
   each bounded scheme — much tighter than the default Theorem-1
   reading of |crashed| * N * (N+1). These regressions hold the
   observed crash_held under the calibrated envelope across a seeded
   grid; a scheme change that strands more per crash fails here before
   it moves E12. *)
let envelope_tests =
  let check_scheme scheme =
    tc (scheme ^ ": crash loss stays within the calibrated envelope")
      (fun () ->
        let threads = 3 in
        let bound =
          match Audit.envelope ~scheme ~threads ~crashes:1 () with
          | Some b -> b
          | None -> Alcotest.failf "%s: expected a calibrated envelope" scheme
        in
        let audited = ref 0 in
        for seed = 0 to 9 do
          match
            crash_scenario ~scheme ~threads ~capacity:24 ~ops:30
              ~at_step:(60 + (35 * seed))
              ~policy:(Policy.random ~seed:(100 + seed))
              ()
          with
          | mm, victim, _, _ ->
              incr audited;
              let r = Audit.run ~crashed:[ victim ] ~loss_bound:bound mm in
              check_bool
                (Printf.sprintf "seed %d within envelope %d: %s" seed bound
                   (Audit.to_string r))
                true
                (r.Audit.crash_held <= bound && r.Audit.violations = [])
          | exception Engine.Out_of_steps -> ()
          (* lockrc: the victim died holding the lock and the run never
             quiesced; recovery_tests covers that shape *)
        done;
        check_bool "grid produced audited runs" true (!audited > 0))
  in
  List.map check_scheme [ "wfrc"; "lfrc"; "lockrc"; "hp" ]
  @ [
      tc "ebr has no bounded envelope (unbounded by design)" (fun () ->
          check_bool "no envelope for ebr" true
            (Audit.envelope ~scheme:"ebr" ~threads:4 ~crashes:1 () = None));
    ]

(* ---------------- Crash recovery: dead-slot adoption ------------------ *)

module Recovery = Harness.Recovery
module Chaos = Harness.Chaos

let drain = Harness.Exp_support.drain_survivors

let recovery_tests =
  [
    tc "recovery returns >=90% of crash_held, every scheme, audit clean"
      (fun () ->
        List.iter
          (fun scheme ->
            let audited = ref 0 in
            for seed = 0 to 4 do
              match
                crash_scenario ~scheme ~threads:3 ~capacity:24 ~ops:24
                  ~at_step:(50 + (45 * seed))
                  ~policy:(Policy.random ~seed:(200 + seed))
                  ()
              with
              | mm, victim, _, _ ->
                  incr audited;
                  drain mm ~survivors:[ 0; 1 ];
                  let o = Recovery.run ~dead:[ victim ] ~by:0 mm in
                  let label what =
                    Printf.sprintf "%s seed %d %s: %s" scheme seed what
                      (Audit.to_string o.Recovery.post)
                  in
                  check_bool (label "post-audit ok") true
                    (Audit.ok o.Recovery.post);
                  check_int (label "crash_held collapsed") 0
                    o.Recovery.post.Audit.crash_held;
                  check_int (label "nothing leaked") 0
                    o.Recovery.post.Audit.leaked;
                  check_bool (label "recovered >= 90% of crash_held") true
                    (10 * o.Recovery.post.Audit.recovered
                    >= 9 * o.Recovery.pre.Audit.crash_held)
              | exception Engine.Out_of_steps -> ()
            done;
            check_bool (scheme ^ ": grid produced audited runs") true
              (!audited > 0))
          all_schemes);
    tc "Recovery.run rejects an empty dead set and a dead adopter"
      (fun () ->
        let mm = mm_of "wfrc" (small_cfg ()) in
        fails_with ~substring:"empty dead set" (fun () ->
            Recovery.run ~dead:[] ~by:0 mm);
        fails_with ~substring:"adopter is dead" (fun () ->
            Recovery.run ~dead:[ 0; 1 ] ~by:1 mm));
    tc "lockrc: a victim that died holding the lock is recoverable"
      (fun () ->
        (* Survivors spin on the dead thread's lock forever, so the
           E12 bed never quiesces (those runs are skipped there). With
           an idle peer the run does quiesce, and recovery must break
           the lock so the survivor can operate again. *)
        let any_cleared = ref false in
        for seed = 0 to 9 do
          let cfg =
            Mm.config ~threads:2 ~capacity:16 ~num_links:1 ~num_data:1
              ~num_roots:1 ()
          in
          let mm = mm_of "lockrc" cfg in
          let root = Arena.root_addr (Mm.arena mm) 0 in
          let faults = [ Fault.crash ~tid:1 ~at_step:(20 + (9 * seed)) ] in
          ignore
            (Engine.run ~max_steps:100_000 ~threads:2 ~faults
               ~policy:(Policy.random ~seed:(300 + seed))
               (fun tid ->
                 if tid = 1 then
                   while true do
                     churn mm ~root ~tid
                   done));
          let o = Recovery.run ~dead:[ 1 ] ~by:0 mm in
          if o.Recovery.stats.Mm.cleared > 0 then any_cleared := true;
          check_bool
            (Printf.sprintf "seed %d post-audit ok: %s" seed
               (Audit.to_string o.Recovery.post))
            true
            (Audit.ok o.Recovery.post);
          (* the lock is free again: the survivor can operate *)
          churn mm ~root ~tid:0;
          drain mm ~survivors:[ 0 ]
        done;
        check_bool "at least one victim died holding the lock" true
          !any_cleared);
    tc "native chaos: mid-fragment crash on Domains, then adoption"
      (fun () ->
        let cfg =
          Mm.config ~backend:Atomics.Backend.Native ~shards:2 ~batch:2
            ~threads:2 ~capacity:32 ~num_links:1 ~num_data:1 ~num_roots:1 ()
        in
        let mm = mm_of "wfrc" cfg in
        let root = Arena.root_addr (Mm.arena mm) 0 in
        let chaos = Chaos.of_plan ~threads:2 [ Fault.crash ~tid:1 ~at_step:9 ] in
        ignore
          (Chaos.run chaos (fun ~tid ->
               for _ = 1 to 200 do
                 churn mm ~root ~tid
               done));
        check_bool "the crash fired" true (Chaos.crashed chaos = [ 1 ]);
        check_bool "tid 0 survived" true (Chaos.survivors chaos = [ 0 ]);
        drain mm ~survivors:[ 0 ];
        let o = Recovery.run ~dead:[ 1 ] ~by:0 mm in
        check_bool
          ("post-audit ok: " ^ Audit.to_string o.Recovery.post)
          true
          (Audit.ok o.Recovery.post);
        check_int "crash_held collapsed" 0 o.Recovery.post.Audit.crash_held;
        check_int "nothing leaked" 0 o.Recovery.post.Audit.leaked);
    tc "wfrc_deferred: crash during flush; recover drains the adopted buffer"
      (fun () ->
        (* A tiny rc buffer (defer = 4) makes the victim flush every
           few churn ops, so a dense at_step sweep necessarily lands
           crashes inside flush loops — between the shared-counter
           FAAs — leaving a partially drained buffer behind. Recovery
           must adopt and drain whatever suffix survived, with a clean
           audit and zero leaks, every time. *)
        let audited = ref 0 and buffered_at_crash = ref 0 in
        for seed = 0 to 9 do
          let cfg =
            Mm.config ~defer:4 ~threads:3 ~capacity:24 ~num_links:1
              ~num_data:1 ~num_roots:1 ()
          in
          let mm = mm_of "wfrc_deferred" cfg in
          let root = Arena.root_addr (Mm.arena mm) 0 in
          let victim = 2 in
          let faults =
            [ Fault.crash ~tid:victim ~at_step:(60 + (23 * seed)) ]
          in
          match
            Engine.run ~max_steps:200_000 ~threads:3 ~faults
              ~policy:(Policy.random ~seed:(700 + seed))
              (fun tid ->
                if tid = victim then
                  while true do
                    churn mm ~root ~tid
                  done
                else
                  for _ = 1 to 24 do
                    churn mm ~root ~tid
                  done)
          with
          | _ ->
              incr audited;
              let c = Mm.custody mm in
              if List.exists (fun (t, _) -> t = victim) c.Mm.deferred then
                incr buffered_at_crash;
              drain mm ~survivors:[ 0; 1 ];
              let o = Recovery.run ~dead:[ victim ] ~by:0 mm in
              let label what =
                Printf.sprintf "seed %d %s: %s" seed what
                  (Audit.to_string o.Recovery.post)
              in
              check_bool (label "post-audit ok") true
                (Audit.ok o.Recovery.post);
              check_int (label "crash_held collapsed") 0
                o.Recovery.post.Audit.crash_held;
              check_int (label "nothing leaked") 0
                o.Recovery.post.Audit.leaked;
              let post = Mm.custody mm in
              check_bool (label "dead rc buffer fully drained") false
                (List.exists (fun (t, _) -> t = victim) post.Mm.deferred)
          | exception Engine.Out_of_steps -> ()
        done;
        check_bool "grid produced audited runs" true (!audited > 0);
        check_bool "some crashes left entries parked in the rc buffer" true
          (!buffered_at_crash > 0));
    tc "native chaos: wfrc_deferred crash mid-flush on Domains, then adoption"
      (fun () ->
        (* The Chaos countdown fires at lifecycle-event boundaries, and
           a draining flush emits its Free events back-to-back — so a
           crash landing on one of those boundaries kills the victim
           mid-flush. Rcbuf.clear empties the row BEFORE the entries
           are processed, so a mid-flush kill strands the unprocessed
           decrements as shared-count over-approximation anomalies
           (excess even counts), not as buffer entries: the recovery
           fixpoint must release them on the dead thread's behalf
           (stats.released), with a clean audit and zero leaks. *)
        let any_stranded = ref false in
        for s = 0 to 2 do
          let cfg =
            Mm.config ~backend:Atomics.Backend.Native ~defer:4 ~shards:2
              ~batch:2 ~threads:2 ~capacity:32 ~num_links:1 ~num_data:1
              ~num_roots:1 ()
          in
          let mm = mm_of "wfrc_deferred" cfg in
          let root = Arena.root_addr (Mm.arena mm) 0 in
          let chaos =
            Chaos.of_plan ~threads:2
              [ Fault.crash ~tid:1 ~at_step:(9 + (8 * s)) ]
          in
          ignore
            (Chaos.run chaos (fun ~tid ->
                 for _ = 1 to 200 do
                   churn mm ~root ~tid
                 done));
          check_bool "the crash fired" true (Chaos.crashed chaos = [ 1 ]);
          drain mm ~survivors:[ 0 ];
          let o = Recovery.run ~dead:[ 1 ] ~by:0 mm in
          if o.Recovery.stats.Mm.released > 0 then any_stranded := true;
          let label what =
            Printf.sprintf "countdown %d %s: %s" s what
              (Audit.to_string o.Recovery.post)
          in
          check_bool (label "post-audit ok") true (Audit.ok o.Recovery.post);
          check_int (label "crash_held collapsed") 0
            o.Recovery.post.Audit.crash_held;
          check_int (label "nothing leaked") 0 o.Recovery.post.Audit.leaked;
          let post = Mm.custody mm in
          check_bool (label "dead rc buffer fully drained") false
            (List.exists (fun (t, _) -> t = 1) post.Mm.deferred)
        done;
        check_bool
          "some countdown stranded mid-flush decrements for the fixpoint"
          true !any_stranded);
    tc "native chaos: a stalled thread sleeps through its window and resumes"
      (fun () ->
        let cfg =
          Mm.config ~backend:Atomics.Backend.Native ~threads:2 ~capacity:16
            ~num_links:1 ~num_data:1 ~num_roots:1 ()
        in
        let mm = mm_of "wfrc" cfg in
        let root = Arena.root_addr (Mm.arena mm) 0 in
        let done_ops = Array.make 2 0 in
        let chaos =
          Chaos.of_plan ~threads:2
            [ Fault.stall ~tid:0 ~from_step:5 ~duration:500 ]
        in
        ignore
          (Chaos.run chaos (fun ~tid ->
               for _ = 1 to 50 do
                 churn mm ~root ~tid;
                 done_ops.(tid) <- done_ops.(tid) + 1
               done));
        check_bool "nobody crashed" true (Chaos.crashed chaos = []);
        check_int "stalled thread finished all its ops" 50 done_ops.(0);
        check_int "peer finished all its ops" 50 done_ops.(1);
        drain mm ~survivors:[ 0; 1 ];
        let r = Audit.run mm in
        check_bool ("clean: " ^ Audit.to_string r) true (Audit.ok r));
  ]

let suite =
  plan_tests @ engine_tests
  @ [ replay_trace_test ]
  @ audit_tests @ envelope_tests @ recovery_tests
