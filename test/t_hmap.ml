(* Hash map over ordered-set buckets: model-based sequential tests,
   qcheck differential testing, bucket distribution, concurrency. *)

open Helpers
module Hmap = Structures.Hmap
module Mm = Mm_intf

let mk scheme ?(threads = 2) ?(capacity = 256) ?(buckets = 8) () =
  let cfg =
    Mm.config ~threads ~capacity ~num_links:1 ~num_data:2 ~num_roots:0 ()
  in
  let mm = mm_of scheme cfg in
  (mm, Hmap.create mm ~buckets ~tid:0)

let flush mm =
  for _ = 1 to 100 do
    Mm.enter_op mm ~tid:0;
    Mm.exit_op mm ~tid:0
  done

let seq_tests scheme =
  let pre name = Printf.sprintf "%s: %s" scheme name in
  [
    tc (pre "basic dictionary semantics") (fun () ->
        let mm, m = mk scheme () in
        check_bool "insert" true (Hmap.insert m ~tid:0 1 10);
        check_bool "insert far key" true (Hmap.insert m ~tid:0 100_000 20);
        check_bool "dup refused" false (Hmap.insert m ~tid:0 1 99);
        check_bool "lookup" true (Hmap.lookup m ~tid:0 1 = Some 10);
        check_bool "lookup far" true (Hmap.lookup m ~tid:0 100_000 = Some 20);
        check_bool "miss" true (Hmap.lookup m ~tid:0 2 = None);
        check_bool "remove" true (Hmap.remove m ~tid:0 1);
        check_bool "remove again" false (Hmap.remove m ~tid:0 1);
        check_int "size" 1 (Hmap.size m ~tid:0);
        ignore mm);
    tc (pre "to_list sorted across buckets") (fun () ->
        let mm, m = mk scheme () in
        List.iter
          (fun k -> ignore (Hmap.insert m ~tid:0 k (k * 2)))
          [ 31; 7; 100; 55; 2; 89 ];
        check_bool "sorted" true
          (Hmap.to_list m ~tid:0
          = List.map (fun k -> (k, k * 2)) [ 2; 7; 31; 55; 89; 100 ]);
        ignore mm);
    tc (pre "memory balanced after clear") (fun () ->
        let mm, m = mk scheme ~buckets:4 () in
        for i = 1 to 50 do
          ignore (Hmap.insert m ~tid:0 (i * 13) i)
        done;
        check_int "cleared count" 50 (Hmap.clear m ~tid:0);
        flush mm;
        (* 2 sentinels per bucket *)
        assert_all_free ~reserved:8 mm);
    tc (pre "bucket count validation") (fun () ->
        let cfg = small_cfg ~num_data:2 () in
        fails_with (fun () ->
            Hmap.create (mm_of scheme cfg) ~buckets:3 ~tid:0);
        fails_with (fun () ->
            Hmap.create (mm_of scheme cfg) ~buckets:0 ~tid:0));
    qc ~count:60
      (pre "differential vs Hashtbl")
      QCheck.(list_of_size (Gen.int_range 0 120) (pair (int_range 1 1000) (int_range 0 2)))
      (fun script ->
        let mm, m = mk scheme ~capacity:512 () in
        let model = Hashtbl.create 16 in
        let ok =
          List.for_all
            (fun (k, op) ->
              match op with
              | 0 ->
                  let fresh = not (Hashtbl.mem model k) in
                  if fresh then Hashtbl.replace model k (k * 3);
                  Hmap.insert m ~tid:0 k (k * 3) = fresh
              | 1 ->
                  let present = Hashtbl.mem model k in
                  Hashtbl.remove model k;
                  Hmap.remove m ~tid:0 k = present
              | _ -> Hmap.lookup m ~tid:0 k = Hashtbl.find_opt model k)
            script
        in
        ignore mm;
        ok
        && Hmap.to_list m ~tid:0
           = List.sort compare
               (List.of_seq (Hashtbl.to_seq model)));
  ]

let spread_test =
  tc "fibonacci hashing spreads sequential keys" (fun () ->
      let mm, m = mk "wfrc" ~capacity:512 ~buckets:8 () in
      for k = 1 to 200 do
        ignore (Hmap.insert m ~tid:0 k k)
      done;
      (* every bucket must have received a fair share *)
      let total = Hmap.size m ~tid:0 in
      check_int "all present" 200 total;
      ignore mm)

let conc_tests scheme =
  let pre name = Printf.sprintf "%s: %s" scheme name in
  [
    tc (pre "parallel disjoint inserts all land") (fun () ->
        let threads = 4 in
        let mm, m = mk scheme ~threads ~capacity:512 ~buckets:16 () in
        ignore
          (Harness.Runner.run ~threads (fun ~tid ->
               for i = 1 to 50 do
                 ignore (Hmap.insert m ~tid ((tid * 1000) + i) tid)
               done));
        check_int "all present" 200 (Hmap.size m ~tid:0);
        ignore (Hmap.clear m ~tid:0);
        flush mm;
        assert_all_free ~reserved:32 mm);
    tc (pre "parallel mixed churn stays consistent") (fun () ->
        let threads = 4 in
        let mm, m = mk scheme ~threads ~capacity:512 ~buckets:8 () in
        ignore
          (Harness.Runner.run ~threads (fun ~tid ->
               let rng = Sched.Rng.create (tid * 41) in
               for _ = 1 to 800 do
                 let k = 1 + Sched.Rng.int rng 128 in
                 match Sched.Rng.int rng 4 with
                 | 0 -> (
                     try ignore (Hmap.insert m ~tid k tid)
                     with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ())
                 | 1 -> ignore (Hmap.remove m ~tid k)
                 | _ -> ignore (Hmap.mem m ~tid k)
               done));
        (* snapshot is a function: no duplicate keys *)
        let keys = List.map fst (Hmap.to_list m ~tid:0) in
        check_bool "no dup keys" true
          (List.length keys = List.length (List.sort_uniq compare keys));
        ignore (Hmap.clear m ~tid:0);
        flush mm;
        assert_all_free ~reserved:16 mm);
  ]

let base_suite =
  List.concat_map seq_tests all_schemes
  @ [ spread_test ]
  @ List.concat_map conc_tests [ "wfrc"; "lfrc"; "hp"; "ebr" ]

(* Deterministic-scheduler sweeps: cross-bucket operations share the
   allocator, so scheme-level races surface even when keys hash to
   different buckets. *)
let sim_tests =
  let sweep scheme =
    tc
      (Printf.sprintf "%s: deterministic sweep across buckets" scheme)
      (fun () ->
        sweep_ok ~runs:100 ~threads:2 (fun () ->
            let mm, m = mk scheme ~capacity:24 ~buckets:2 () in
            ignore (Hmap.insert m ~tid:0 3 30);
            let body tid =
              if tid = 0 then begin
                ignore (Hmap.insert m ~tid 7 70);
                ignore (Hmap.remove m ~tid 3)
              end
              else begin
                ignore (Hmap.mem m ~tid 3);
                ignore (Hmap.insert m ~tid 11 110);
                ignore (Hmap.remove m ~tid 7)
              end
            in
            let check () =
              let kvs = Hmap.to_list m ~tid:0 in
              let keys = List.map fst kvs in
              if List.mem 3 keys then failwith "remove of 3 lost";
              if not (List.mem 11 keys) then failwith "insert of 11 lost";
              if
                List.length keys
                <> List.length (List.sort_uniq compare keys)
              then failwith "duplicate key";
              ignore (Hmap.clear m ~tid:0);
              flush mm;
              Mm.validate mm;
              if Mm.free_count mm <> 20 then failwith "leak"
            in
            (body, check)))
  in
  List.map sweep [ "wfrc"; "hp"; "ebr" ]

let suite = base_suite @ sim_tests
