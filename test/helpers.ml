(* Shared test utilities. *)

module Mm = Mm_intf
module Value = Shmem.Value
module Arena = Shmem.Arena

let tc name fn = Alcotest.test_case name `Quick fn
let tc_slow name fn = Alcotest.test_case name `Slow fn

(* QCheck_alcotest tags everything `Slow; re-tag as `Quick so the
   property tests run in every `dune runtest`. *)
let qc ?(count = 200) name gen prop =
  let n, _speed, fn =
    QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
  in
  (n, `Quick, fn)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let fails_with ?substring f =
  match f () with
  | _ -> Alcotest.fail "expected an exception"
  | exception e -> (
      match substring with
      | None -> ()
      | Some s ->
          let msg = Printexc.to_string e in
          if not (contains msg s) then
            Alcotest.failf "expected exception mentioning %S, got %S" s msg)

(* Standard configs *)
let small_cfg ?(threads = 2) ?(capacity = 16) ?(num_links = 1) ?(num_data = 1)
    ?(num_roots = 2) () =
  Mm.config ~threads ~capacity ~num_links ~num_data ~num_roots ()

let all_schemes = Harness.Registry.names
let rc_schemes = Harness.Registry.rc_names

let mm_of scheme cfg = Harness.Registry.instantiate scheme cfg

(* Assert no leak: every node is back in the allocator's custody. *)
let assert_all_free ?(reserved = 0) mm =
  let cfg = Mm.conf mm in
  Mm.validate mm;
  check_int "all nodes free (minus reserved)" (cfg.capacity - reserved)
    (Mm.free_count mm)

(* Run a deterministic-scheduler sweep and fail the test on the first
   counterexample, printing the schedule for replay. *)
let sweep_ok ?(runs = 200) ?(seed = 9_000) ~threads mk =
  match (Sched.Explore.random_sweep ~threads ~runs ~seed mk).failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "schedule violation: %s" (Sched.Explore.failure_message f)

let exhaustive_ok ?(max_schedules = 20_000) ~threads mk =
  let r = Sched.Explore.exhaustive ~max_schedules ~threads mk in
  (match r.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "exhaustive violation: %s"
        (Sched.Explore.failure_message f));
  r
