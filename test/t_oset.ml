(* Ordered set (Michael's list-based set): sequential semantics vs a
   map model, qcheck differential tests, concurrency, and sim sweeps —
   on ALL five schemes, including the retire-based ones. *)

open Helpers
module Oset = Structures.Oset
module Mm = Mm_intf

let mk scheme ?(threads = 2) ?(capacity = 64) () =
  let cfg =
    Mm.config ~threads ~capacity ~num_links:1 ~num_data:2 ~num_roots:0 ()
  in
  let mm = mm_of scheme cfg in
  (mm, Oset.create mm ~tid:0)

let flush mm =
  for _ = 1 to 100 do
    Mm.enter_op mm ~tid:0;
    Mm.exit_op mm ~tid:0
  done

let seq_tests scheme =
  let pre name = Printf.sprintf "%s: %s" scheme name in
  [
    tc (pre "insert/mem/remove basics") (fun () ->
        let mm, s = mk scheme () in
        check_bool "insert 5" true (Oset.insert s ~tid:0 5 50);
        check_bool "insert 3" true (Oset.insert s ~tid:0 3 30);
        check_bool "insert dup refused" false (Oset.insert s ~tid:0 5 99);
        check_bool "mem 3" true (Oset.mem s ~tid:0 3);
        check_bool "mem 4" false (Oset.mem s ~tid:0 4);
        check_bool "lookup" true (Oset.lookup s ~tid:0 5 = Some 50);
        check_bool "lookup dup kept original" true
          (Oset.lookup s ~tid:0 5 = Some 50);
        check_bool "remove 3" true (Oset.remove s ~tid:0 3);
        check_bool "remove 3 again" false (Oset.remove s ~tid:0 3);
        check_bool "mem gone" false (Oset.mem s ~tid:0 3);
        ignore mm);
    tc (pre "keys come back sorted") (fun () ->
        let mm, s = mk scheme () in
        List.iter
          (fun k -> ignore (Oset.insert s ~tid:0 k k))
          [ 9; 1; 7; 3; 5 ];
        check_bool "sorted" true
          (List.map fst (Oset.to_list s ~tid:0) = [ 1; 3; 5; 7; 9 ]);
        check_int "size" 5 (Oset.size s ~tid:0);
        ignore mm);
    tc (pre "reserved keys rejected") (fun () ->
        let mm, s = mk scheme () in
        fails_with (fun () -> Oset.insert s ~tid:0 max_int 0);
        fails_with (fun () -> Oset.insert s ~tid:0 min_int 0);
        ignore mm);
    tc (pre "insert/remove cycles recycle memory") (fun () ->
        let mm, s = mk scheme ~capacity:16 () in
        for round = 0 to 40 do
          for i = 1 to 8 do
            ignore (Oset.insert s ~tid:0 ((round mod 3) + (i * 10)) i)
          done;
          ignore (Oset.clear s ~tid:0)
        done;
        flush mm;
        assert_all_free ~reserved:2 mm);
    qc ~count:80
      (pre "differential vs sorted association list")
      QCheck.(list_of_size (Gen.int_range 0 80) (pair (int_range 1 20) (int_range 0 2)))
      (fun script ->
        let mm, s = mk scheme ~capacity:128 () in
        let model = Hashtbl.create 16 in
        let ok =
          List.for_all
            (fun (k, op) ->
              match op with
              | 0 ->
                  let fresh = not (Hashtbl.mem model k) in
                  if fresh then Hashtbl.replace model k k;
                  Oset.insert s ~tid:0 k k = fresh
              | 1 ->
                  let present = Hashtbl.mem model k in
                  Hashtbl.remove model k;
                  Oset.remove s ~tid:0 k = present
              | _ -> Oset.mem s ~tid:0 k = Hashtbl.mem model k)
            script
        in
        ignore mm;
        ok
        && List.map fst (Oset.to_list s ~tid:0)
           = List.sort compare (List.of_seq (Hashtbl.to_seq_keys model)));
  ]

let conc_tests scheme =
  let pre name = Printf.sprintf "%s: %s" scheme name in
  [
    tc (pre "disjoint key ranges: all inserts land") (fun () ->
        let threads = 4 in
        let mm, s = mk scheme ~threads ~capacity:256 () in
        ignore
          (Harness.Runner.run ~threads (fun ~tid ->
               for i = 1 to 40 do
                 ignore (Oset.insert s ~tid ((tid * 100) + i) i)
               done));
        check_int "all present" 160 (Oset.size s ~tid:0);
        for tid = 0 to 3 do
          for i = 1 to 40 do
            if not (Oset.mem s ~tid:0 ((tid * 100) + i)) then
              Alcotest.failf "key %d missing" ((tid * 100) + i)
          done
        done;
        ignore (Oset.clear s ~tid:0);
        flush mm;
        assert_all_free ~reserved:2 mm);
    tc (pre "contended single key: exactly one winner per round") (fun () ->
        let threads = 4 in
        let mm, s = mk scheme ~threads ~capacity:64 () in
        let wins = Array.make threads 0 in
        let removals = Array.make threads 0 in
        ignore
          (Harness.Runner.run ~threads (fun ~tid ->
               for _ = 1 to 500 do
                 (* EBR can transiently exhaust the pool while a
                    preempted thread pins the epoch: an OOM'd insert
                    simply isn't a win *)
                 (match Oset.insert s ~tid 42 tid with
                 | true -> wins.(tid) <- wins.(tid) + 1
                 | false -> ()
                 | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ());
                 if Oset.remove s ~tid 42 then
                   removals.(tid) <- removals.(tid) + 1
               done));
        let total_wins = Array.fold_left ( + ) 0 wins in
        let total_removals = Array.fold_left ( + ) 0 removals in
        let still = if Oset.mem s ~tid:0 42 then 1 else 0 in
        check_int "inserts = removals + residue" total_wins
          (total_removals + still);
        ignore (Oset.clear s ~tid:0);
        flush mm;
        assert_all_free ~reserved:2 mm);
    tc (pre "mixed churn conserves memory") (fun () ->
        let threads = 4 in
        let mm, s = mk scheme ~threads ~capacity:128 () in
        ignore
          (Harness.Runner.run ~threads (fun ~tid ->
               let rng = Sched.Rng.create (tid * 31) in
               for _ = 1 to 1_000 do
                 let k = 1 + Sched.Rng.int rng 64 in
                 match Sched.Rng.int rng 3 with
                 | 0 -> (
                     try ignore (Oset.insert s ~tid k tid)
                     with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ())
                 | 1 -> ignore (Oset.remove s ~tid k)
                 | _ -> ignore (Oset.mem s ~tid k)
               done));
        ignore (Oset.clear s ~tid:0);
        flush mm;
        assert_all_free ~reserved:2 mm);
  ]

let sim_tests =
  (* the retire-based schemes are the interesting ones here: this is
     the structure that must be safe on them *)
  let sweep scheme =
    tc (Printf.sprintf "%s: deterministic sweep (insert/remove/mem races)"
          scheme) (fun () ->
        sweep_ok ~runs:150 ~threads:2 (fun () ->
            let mm, s = mk scheme ~capacity:16 () in
            ignore (Oset.insert s ~tid:0 10 0);
            let body tid =
              if tid = 0 then begin
                ignore (Oset.insert s ~tid 5 50);
                ignore (Oset.remove s ~tid 10)
              end
              else begin
                ignore (Oset.mem s ~tid 10);
                ignore (Oset.insert s ~tid 15 150);
                ignore (Oset.remove s ~tid 5)
              end
            in
            let check () =
              (* 10 removed; 15 present; 5 present iff t0's insert
                 preceded t1's remove — either way the set is
                 well-formed and memory balanced after clear *)
              let keys = List.map fst (Oset.to_list s ~tid:0) in
              if not (List.mem 15 keys) then failwith "lost insert of 15";
              if List.mem 10 keys then failwith "remove of 10 lost";
              if List.sort compare keys <> keys then failwith "unsorted";
              ignore (Oset.clear s ~tid:0);
              flush mm;
              Mm.validate mm;
              if Mm.free_count mm <> 14 then failwith "leak"
            in
            (body, check)))
  in
  List.map sweep [ "wfrc"; "lfrc"; "hp"; "ebr" ]

let suite =
  List.concat_map seq_tests all_schemes
  @ List.concat_map conc_tests all_schemes
  @ sim_tests
