(* Aggregated alcotest runner for the whole repository.

   `dune runtest` runs the quick tests; slow suites (heavy stress,
   exhaustive exploration, experiment shape checks) are tagged `Slow
   and run with ALCOTEST_QUICK_TESTS unset / -e. *)

let () =
  Alcotest.run "wfrc-repro"
    [
      ("value", T_value.suite);
      ("shmem", T_shmem.suite);
      ("atomics", T_atomics.suite);
      ("backend", T_backend.suite);
      ("sched", T_sched.suite);
      ("fault", T_fault.suite);
      ("oom", T_oom.suite);
      ("wfrc-unit", T_wfrc_unit.suite);
      ("wfrc-sim", T_wfrc_sim.suite);
      ("wfrc-conc", T_wfrc_conc.suite);
      ("baselines", T_baselines.suite);
      ("models", T_models.suite);
      ("stack", T_stack.suite);
      ("queue", T_queue.suite);
      ("pqueue", T_pqueue.suite);
      ("oset", T_oset.suite);
      ("hmap", T_hmap.suite);
      ("multiway", T_multiway.suite);
      ("lincheck", T_lincheck.suite);
      ("actor", T_actor.suite);
      ("harness", T_harness.suite);
      ("experiments", T_experiments.suite);
      ("analysis", T_analysis.suite);
      ("lint", T_lint.suite);
      ("progress", T_progress.suite);
    ]
