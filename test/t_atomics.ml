(* Primitives, counters, backoff and the scheduling hook. *)

open Helpers
module P = Atomics.Primitives
module C = Atomics.Counters

let primitives_tests =
  [
    tc "figure 2 semantics" (fun () ->
        let c = P.make 10 in
        check_int "read" 10 (P.read c);
        P.write c 20;
        check_int "write" 20 (P.read c);
        check_int "faa returns old" 20 (P.faa c 5);
        check_int "faa added" 25 (P.read c);
        check_int "faa negative" 25 (P.faa c (-10));
        check_int "after" 15 (P.read c);
        check_bool "cas hit" true (P.cas c ~old:15 ~nw:1);
        check_bool "cas miss leaves value" false (P.cas c ~old:15 ~nw:99);
        check_int "value" 1 (P.read c);
        check_int "swap returns old" 1 (P.swap c 7);
        check_int "swap stored" 7 (P.read c));
    tc "parallel faa counter is exact" (fun () ->
        let c = P.make 0 in
        let domains =
          Array.init 4 (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to 10_000 do
                    ignore (P.faa c 1)
                  done))
        in
        Array.iter Domain.join domains;
        check_int "sum" 40_000 (P.read c));
    tc "parallel cas increments are exact" (fun () ->
        let c = P.make 0 in
        let domains =
          Array.init 3 (fun _ ->
              Domain.spawn (fun () ->
                  for _ = 1 to 2_000 do
                    let rec incr () =
                      let v = P.read c in
                      if not (P.cas c ~old:v ~nw:(v + 1)) then incr ()
                    in
                    incr ()
                  done))
        in
        Array.iter Domain.join domains;
        check_int "sum" 6_000 (P.read c));
  ]

let schedpoint_tests =
  [
    tc "default hook is a no-op" (fun () ->
        Atomics.Schedpoint.reset ();
        check_bool "not installed" false (Atomics.Schedpoint.is_installed ());
        Atomics.Schedpoint.hit () (* must not raise *));
    tc "with_hook counts primitive crossings" (fun () ->
        let n = ref 0 in
        Atomics.Schedpoint.with_hook
          (fun () -> incr n)
          (fun () ->
            let c = P.make 0 in
            ignore (P.read c);
            ignore (P.faa c 1);
            ignore (P.swap c 2);
            ignore (P.cas c ~old:2 ~nw:3);
            P.write c 4);
        check_int "five crossings" 5 !n;
        check_bool "restored" false (Atomics.Schedpoint.is_installed ()));
    tc "with_hook restores on exception" (fun () ->
        (try
           Atomics.Schedpoint.with_hook ignore (fun () -> failwith "boom")
         with Failure _ -> ());
        check_bool "restored" false (Atomics.Schedpoint.is_installed ()));
  ]

let counters_tests =
  [
    tc "incr/add/get/total" (fun () ->
        let t = C.create ~threads:3 () in
        C.incr t ~tid:0 Alloc;
        C.add t ~tid:1 Alloc 4;
        C.incr t ~tid:2 Free;
        check_int "tid0" 1 (C.get t ~tid:0 Alloc);
        check_int "tid1" 4 (C.get t ~tid:1 Alloc);
        check_int "total alloc" 5 (C.total t Alloc);
        check_int "total free" 1 (C.total t Free);
        check_int "untouched" 0 (C.total t Cas_failure));
    tc "reset clears everything" (fun () ->
        let t = C.create ~threads:2 () in
        C.add t ~tid:0 Deref 9;
        C.reset t;
        check_int "cleared" 0 (C.total t Deref));
    tc "snapshot lists only non-zero events" (fun () ->
        let t = C.create ~threads:1 () in
        C.incr t ~tid:0 Swap;
        C.add t ~tid:0 Release 3;
        let snap = C.snapshot t in
        check_int "two entries" 2 (List.length snap);
        check_bool "has swap" true (List.mem_assoc C.Swap snap));
    tc "bad tid rejected" (fun () ->
        let t = C.create ~threads:2 () in
        fails_with (fun () -> C.incr t ~tid:2 Alloc);
        fails_with (fun () -> C.get t ~tid:(-1) Alloc));
    tc "event names unique" (fun () ->
        let names = List.map C.event_name C.all_events in
        check_int "no duplicates"
          (List.length names)
          (List.length (List.sort_uniq compare names)));
    tc "parallel per-thread increments don't interfere" (fun () ->
        let t = C.create ~threads:4 () in
        let domains =
          Array.init 4 (fun tid ->
              Domain.spawn (fun () ->
                  for _ = 1 to 5_000 do
                    C.incr t ~tid Cas_attempt
                  done))
        in
        Array.iter Domain.join domains;
        check_int "total" 20_000 (C.total t Cas_attempt);
        for tid = 0 to 3 do
          check_int "per thread" 5_000 (C.get t ~tid Cas_attempt)
        done);
  ]

let backoff_tests =
  [
    tc "doubles up to max" (fun () ->
        let b = Atomics.Backoff.create ~min:2 ~max:16 () in
        check_int "start" 2 (Atomics.Backoff.current b);
        Atomics.Backoff.once b;
        check_int "doubled" 4 (Atomics.Backoff.current b);
        Atomics.Backoff.once b;
        Atomics.Backoff.once b;
        Atomics.Backoff.once b;
        check_int "capped" 16 (Atomics.Backoff.current b);
        Atomics.Backoff.reset b;
        check_int "reset" 2 (Atomics.Backoff.current b));
    tc "invalid bounds rejected" (fun () ->
        fails_with (fun () -> Atomics.Backoff.create ~min:0 ~max:4 ());
        fails_with (fun () -> Atomics.Backoff.create ~min:8 ~max:4 ()));
    tc "under a hook it yields instead of spinning" (fun () ->
        let hits = ref 0 in
        Atomics.Schedpoint.with_hook
          (fun () -> incr hits)
          (fun () ->
            let b = Atomics.Backoff.create ~min:1024 ~max:4096 () in
            Atomics.Backoff.once b);
        check_int "one yield, no spin" 1 !hits);
  ]

(* Park/unpark eventcount: the prepare/re-check/park discipline, the
   waiter accounting wake relies on for Park_wake counting, and an
   actual cross-domain sleep/wake round trip. *)
module Park = Atomics.Park

let park_tests =
  [
    tc "wake with no waiters is cheap and false" (fun () ->
        let p = Park.create () in
        check_int "no waiters" 0 (Park.waiters p);
        check_bool "nothing woken" false (Park.wake p));
    tc "prepare registers, cancel deregisters" (fun () ->
        let p = Park.create () in
        let _gen = Park.prepare p in
        check_int "registered" 1 (Park.waiters p);
        Park.cancel p;
        check_int "deregistered" 0 (Park.waiters p));
    tc "wake reports a registered parker" (fun () ->
        let p = Park.create () in
        let gen = Park.prepare p in
        check_bool "parker seen" true (Park.wake p);
        (* generation already moved past [gen]: park returns at once *)
        Park.park p ~gen ~timeout_ns:(-1);
        check_int "deregistered on return" 0 (Park.waiters p));
    tc "timed park returns on timeout" (fun () ->
        let p = Park.create () in
        let gen = Park.prepare p in
        (* nobody will ever wake: only the timeout lets this return *)
        Park.park p ~gen ~timeout_ns:5_000_000 (* 5ms *);
        check_int "deregistered" 0 (Park.waiters p));
    tc "cross-domain wake ends an untimed park" (fun () ->
        let p = Park.create () in
        let woken = Atomic.make false in
        let d =
          Domain.spawn (fun () ->
              let gen = Park.prepare p in
              Park.park p ~gen ~timeout_ns:(-1);
              Atomic.set woken true)
        in
        (* wait until the parker is registered, then wake it *)
        while Park.waiters p = 0 do
          Domain.cpu_relax ()
        done;
        while not (Park.wake p) && not (Atomic.get woken) do
          Domain.cpu_relax ()
        done;
        Domain.join d;
        check_bool "parker resumed" true (Atomic.get woken));
  ]

(* Timed-park liveness: the OOM degradation path (Freestore.wait_free,
   Chaos stalls) leans on [park ~timeout_ns] returning without any
   waker, including under wake storms that race the prepare/park
   window. A hang here is an unbounded alloc wait. *)
let park_timeout_tests =
  [
    tc "park with a zero timeout returns at once" (fun () ->
        let p = Park.create () in
        let gen = Park.prepare p in
        Park.park p ~gen ~timeout_ns:0;
        check_int "deregistered" 0 (Park.waiters p));
    qc ~count:25 "timed park with no waker returns for any timeout"
      QCheck.(int_range 0 1_000_000)
      (fun timeout_ns ->
        let p = Park.create () in
        let gen = Park.prepare p in
        Park.park p ~gen ~timeout_ns;
        Park.waiters p = 0);
    tc "timed park never hangs under a spurious-wake storm" (fun () ->
        let p = Park.create () in
        let stop = Atomic.make false in
        let storm =
          Domain.spawn (fun () ->
              while not (Atomic.get stop) do
                ignore (Park.wake p);
                Domain.cpu_relax ()
              done)
        in
        (* every park either times out or is woken spuriously; either
           way it must return and leave no waiter registered *)
        for _ = 1 to 100 do
          let gen = Park.prepare p in
          Park.park p ~gen ~timeout_ns:1_000_000
        done;
        Atomic.set stop true;
        Domain.join storm;
        check_int "no waiter left behind" 0 (Park.waiters p));
    tc "wake racing the prepare/park window still lets park return"
      (fun () ->
        let p = Park.create () in
        for _ = 1 to 50 do
          let gen = Park.prepare p in
          (* the generation moves before we sleep: park must notice
             and return immediately, not wait out the timeout *)
          ignore (Park.wake p);
          let t0 = Unix.gettimeofday () in
          Park.park p ~gen ~timeout_ns:2_000_000_000;
          let dt = Unix.gettimeofday () -. t0 in
          check_bool "returned well before the 2s timeout" true (dt < 1.0)
        done;
        check_int "no waiter left behind" 0 (Park.waiters p));
  ]

let once_waiting_tests =
  [
    tc "sim: once_waiting is exactly once — ready never consulted" (fun () ->
        let hits = ref 0 in
        Atomics.Schedpoint.with_hook
          (fun () -> incr hits)
          (fun () ->
            let b = Atomics.Backoff.create ~min:2 ~max:8 () in
            Atomics.Backoff.once_waiting b ~ready:(fun () ->
                Alcotest.fail "ready consulted under Sim"));
        check_int "one scheduling point" 1 !hits);
    tc "native without a park spot never blocks" (fun () ->
        let b =
          Atomics.Backoff.create ~backend:Atomics.Backend.Native ~min:1 ~max:2
            ()
        in
        (* saturate the budget, then keep going: must stay a spin *)
        for _ = 1 to 10 do
          Atomics.Backoff.once_waiting b ~ready:(fun () -> false)
        done);
    tc "native with a park spot sleeps only when not ready" (fun () ->
        let p = Park.create () in
        let parks = ref 0 in
        let b =
          Atomics.Backoff.create ~backend:Atomics.Backend.Native ~min:1 ~max:2
            ~park:p
            ~on_park:(fun () -> incr parks)
            ()
        in
        (* ready re-check true: registers, re-checks, cancels — no sleep *)
        for _ = 1 to 10 do
          Atomics.Backoff.once_waiting b ~ready:(fun () -> true)
        done;
        check_int "never slept" 0 !parks;
        check_int "no waiter left behind" 0 (Park.waiters p);
        (* not ready: a remote domain publishes and wakes *)
        let stop = Atomic.make false in
        let waker =
          Domain.spawn (fun () ->
              while not (Atomic.get stop) do
                ignore (Park.wake p);
                Domain.cpu_relax ()
              done)
        in
        for _ = 1 to 10 do
          Atomics.Backoff.once_waiting b ~ready:(fun () -> false)
        done;
        Atomic.set stop true;
        Domain.join waker;
        check_bool "budget saturation reached the park tail" true (!parks > 0));
  ]

let suite =
  primitives_tests @ schedpoint_tests @ counters_tests @ backoff_tests
  @ park_tests @ park_timeout_tests @ once_waiting_tests
