(* Experiment shape checks: every experiment must run (at reduced
   parameters), produce a well-formed typed report, and reproduce the
   paper-shaped qualitative result it exists for. *)

open Helpers
module Report = Harness.Report

let wellformed (r : Report.t) =
  check_bool "has rows" true (r.rows <> []);
  let cols = List.length r.cols in
  List.iter
    (fun row -> check_int "row arity" cols (List.length row))
    r.rows

let cell_str = Report.cell_to_string

let cell_int = function
  | Report.Int i | Report.Ns i -> i
  | c -> Alcotest.failf "expected an integer cell, got %S" (cell_str c)

let suite =
  [
    tc_slow "E1 runs and covers all RC schemes" (fun () ->
        let r =
          Harness.Experiments.e1 ~threads_list:[ 1; 2 ] ~ops:2_000
            ~capacity:1024 ()
        in
        wellformed r;
        let schemes = List.map (fun row -> cell_str (List.hd row)) r.rows in
        check_bool "wfrc present" true (List.mem "wfrc" schemes);
        check_bool "lfrc present" true (List.mem "lfrc" schemes);
        check_bool "spine captured counters" true (r.counters <> []));
    tc_slow "E2 shape: wfrc bounded, lfrc grows" (fun () ->
        let r =
          Harness.Experiments.e2 ~schemes:[ "wfrc"; "lfrc" ]
            ~budgets:[ 0; 16 ] ~seeds:10 ()
        in
        wellformed r;
        match r.rows with
        | [ [ _; w0; l0 ]; [ _; w16; l16 ] ] ->
            let w0 = cell_int w0
            and l0 = cell_int l0
            and w16 = cell_int w16
            and l16 = cell_int l16 in
            (* the wait-free bound: a fixed constant for N=2 *)
            check_bool "wfrc bounded" true (w16 <= 60 && w0 <= 60);
            (* the lock-free baseline visibly grows *)
            check_bool "lfrc grows" true (l16 > l0)
        | _ -> Alcotest.fail "unexpected table shape");
    tc_slow "E3 runs for all three free-list schemes" (fun () ->
        let r =
          Harness.Experiments.e3 ~threads_list:[ 1; 2 ] ~ops:4_000
            ~capacity:512 ()
        in
        wellformed r;
        check_int "rows = schemes x thread counts" 6 (List.length r.rows));
    tc_slow "E4 helping counters are exercised" (fun () ->
        let r = Harness.Experiments.e4 ~threads_list:[ 2 ] ~ops:10 ~runs:20 () in
        wellformed r;
        match r.rows with
        | [ row ] ->
            let derefs = cell_int (List.nth row 1) in
            check_bool "derefs happened" true (derefs > 0);
            (* the spine saw the same traffic the row reports *)
            check_bool "deref counter present" true
              (match List.assoc_opt "deref" r.counters with
              | Some n -> n >= derefs
              | None -> false)
        | _ -> Alcotest.fail "one row expected");
    tc_slow "E5 latency columns parse and are ordered" (fun () ->
        let r =
          Harness.Experiments.e5 ~schemes:[ "wfrc" ] ~threads:2 ~ops:2_000
            ~capacity:1024 ()
        in
        wellformed r;
        check_int "one scheme" 1 (List.length r.rows));
    tc_slow "E7 finds no violations" (fun () ->
        let r = Harness.Experiments.e7 ~runs:25 () in
        wellformed r;
        List.iter
          (fun row ->
            check_string
              (Printf.sprintf "%s/%s clean"
                 (cell_str (List.nth row 0))
                 (cell_str (List.nth row 1)))
              "none"
              (cell_str (List.nth row 3)))
          r.rows);
    tc_slow "E8 conservation holds at exhaustion" (fun () ->
        let r = Harness.Experiments.e8 ~threads_list:[ 1; 2 ] ~capacity:16 () in
        wellformed r;
        List.iter
          (fun row ->
            check_string "conservation column" "ok" (cell_str (List.nth row 6));
            let allocated = cell_int (List.nth row 2) in
            let parked = cell_int (List.nth row 3) in
            let lost = cell_int (List.nth row 4) in
            check_int "nothing lost" 0 lost;
            check_int "allocated+parked = capacity" 16 (allocated + parked))
          r.rows);
    tc_slow "E9 covers all six schemes" (fun () ->
        let r =
          Harness.Experiments.e9 ~threads_list:[ 1; 2 ] ~ops:3_000
            ~capacity:512 ()
        in
        wellformed r;
        check_int "six schemes" 6 (List.length r.rows));
    tc_slow "E10 non-blocking schemes never stall; lockrc can" (fun () ->
        let r = Harness.Experiments.e10 ~runs:15 ~ops:8 () in
        wellformed r;
        List.iter
          (fun row ->
            let scheme = cell_str (List.nth row 0) in
            let stalled = cell_int (List.nth row 3) in
            if scheme <> "lockrc" then
              check_int (scheme ^ " never stalls") 0 stalled)
          r.rows);
    tc_slow "A1 bound grows at most linearly in N" (fun () ->
        let r =
          Harness.Experiments.a1 ~threads_list:[ 2; 8 ] ~seeds:6 ()
        in
        wellformed r;
        match r.rows with
        | [ [ _; s2 ]; [ _; s8 ] ] ->
            let s2 = cell_int s2 and s8 = cell_int s8 in
            (* linear-ish: N grew 4x; allow 8x slack but not explosion *)
            check_bool
              (Printf.sprintf "s2=%d s8=%d linearish" s2 s8)
              true
              (s8 <= 8 * s2)
        | _ -> Alcotest.fail "two rows expected");
    tc_slow "A2 and A3 run" (fun () ->
        wellformed
          (Harness.Experiments.a2 ~threads_list:[ 2 ] ~ops:4_000
             ~capacity:512 ());
        wellformed
          (Harness.Experiments.a3 ~threads_list:[ 2 ] ~ops:4_000
             ~capacity:512 ()));
    tc "experiment registry resolves every id" (fun () ->
        List.iter
          (fun id ->
            if not (List.mem id Harness.Experiments.ids) then
              Alcotest.failf "id %s missing" id)
          [
            "e1"; "e2"; "e3"; "e4"; "e5"; "e7"; "e8"; "e9"; "e10"; "e11";
            "e12"; "e13"; "a1"; "a2"; "a3";
          ];
        fails_with ~substring:"unknown experiment" (fun () ->
            Harness.Experiments.run "e99"));
    tc "registry order: experiments by number, then ablations" (fun () ->
        check_bool "e1 first" true (List.hd Harness.Experiments.ids = "e1");
        let rec after_e10 = function
          | "e10" :: rest -> List.mem "e11" rest
          | _ :: rest -> after_e10 rest
          | [] -> false
        in
        check_bool "e10 before e11" true (after_e10 Harness.Experiments.ids);
        check_bool "ablations last" true
          (match List.rev Harness.Experiments.ids with
          | "a4" :: "a3" :: "a2" :: "a1" :: _ -> true
          | _ -> false));
    tc "run stamps the quick flag into the metadata" (fun () ->
        let r = Harness.Experiments.run ~quick:true "e11" in
        check_bool "quick" true r.Report.meta.Report.quick;
        let r = Harness.Experiments.run "e11" in
        check_bool "full" false r.Report.meta.Report.quick);
  ]
