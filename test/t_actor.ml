(* The actor/mailbox runtime (lib/actor) and the bugfix sweep that
   rode along with it: MPSC mailbox linearizability across all six
   schemes, crash-mid-send custody under the deterministic scheduler,
   timer-deadline saturation, the registry sizing probe, mailbox
   teardown idempotency, the per-thread op split, and the audit's
   deferred-closure regression the service workload exposed. *)

open Helpers
module B = Atomics.Backend
module Service = Actor.Service
module Timer = Actor.Timer
module Queue = Structures.Queue
module Hmap = Structures.Hmap
module Audit = Harness.Audit
module Recovery = Harness.Recovery
module Workload = Harness.Workload
module Rng = Sched.Rng
module Queue_check = Lincheck.Checker.Make (Lincheck.Specs.Queue_ops)

(* ---------------- MPSC mailbox lincheck bed ------------------------- *)

(* The service uses each Queue as an MPSC mailbox: any thread
   enqueues, the (current) owner dequeues, and ownership itself can
   migrate. The bed runs producer+consumer on one thread against a
   pure producer on the other — the smallest history shape with both
   contended enqueues and an owner racing them. *)
let mk_mailbox scheme () =
  let cfg = small_cfg ~threads:2 ~capacity:16 () in
  let mm = mm_of scheme cfg in
  let q = Queue.create mm ~head_root:0 ~tail_root:1 ~tid:0 in
  let hist = Lincheck.History.create ~threads:2 in
  let enq tid v =
    ignore
      (Lincheck.History.record hist ~tid (Lincheck.Specs.Queue_ops.Enq v)
         (fun () ->
           Queue.enqueue q ~tid v;
           Lincheck.Specs.Queue_ops.Unit))
  and deq tid =
    ignore
      (Lincheck.History.record hist ~tid Lincheck.Specs.Queue_ops.Deq
         (fun () ->
           match Queue.dequeue q ~tid with
           | Some v -> Lincheck.Specs.Queue_ops.Value v
           | None -> Lincheck.Specs.Queue_ops.Empty))
  in
  let body tid =
    if tid = 0 then begin
      enq 0 10;
      deq 0;
      deq 0
    end
    else begin
      enq 1 20;
      enq 1 21
    end
  in
  let check () =
    if not (Queue_check.check (Lincheck.History.events hist)) then
      failwith "mailbox history not linearizable"
  in
  (body, check)

let mailbox_tests =
  List.map
    (fun scheme ->
      tc (scheme ^ ": MPSC mailbox sweeps linearizable") (fun () ->
          sweep_ok ~runs:150 ~seed:64_000 ~threads:2 (mk_mailbox scheme)))
    all_schemes

(* ---------------- Crash-mid-send custody (Sim fault sweep) ---------- *)

(* E18's sim leg, miniature and pinned: the victim sends forever and
   is crashed mid-traffic; after the survivors drain and the service
   tears down, recovery must leave nothing leaked — the stranded
   mailbox nodes land in the crash_held class and come back. *)
let crash_mid_send scheme ~seed =
  let threads = 3 and actors = 8 and buckets = 8 in
  let victim = threads - 1 in
  let capacity = (2 * buckets) + 2 + (2 * actors) + 128 in
  let cfg =
    Service.mm_config ~backend:B.Sim ~threads ~capacity ~max_actors:actors
      ~buckets ()
  in
  let mm = mm_of scheme cfg in
  let svc = Service.create mm ~max_actors:actors ~buckets ~seed ~tid:0 in
  let published = Array.init actors (fun _ -> Atomic.make (-1)) in
  for _ = 1 to 5 do
    match Service.spawn svc ~tid:0 with
    | Some id -> Atomic.set published.(id mod actors) id
    | None -> ()
  done;
  let rngs = Workload.per_thread ~threads ~seed:(seed + 1) (fun rng -> rng) in
  let body tid =
    let rng = rngs.(tid) in
    let n = if tid = victim then max_int else 40 in
    for _ = 1 to n do
      let dst = Atomic.get published.(Rng.int rng actors) in
      if dst >= 0 then
        if Rng.int rng 3 = 0 then ignore (Service.receive svc ~tid ~self:dst)
        else ignore (Service.send svc ~tid ~dst 7)
    done
  in
  let faults = [ Sched.Fault.crash ~tid:victim ~at_step:(150 + seed) ] in
  match
    Sched.Engine.run ~max_steps:300_000 ~faults ~threads
      ~policy:(Sched.Policy.random ~seed:(seed + 2))
      body
  with
  | _ ->
      Harness.Exp_support.drain_survivors mm ~survivors:[ 0; 1 ];
      ignore (Service.teardown svc ~tid:0);
      let o = Recovery.run ~dead:[ victim ] ~by:0 mm in
      check_int (scheme ^ ": pre-recovery leaked") 0
        o.Recovery.pre.Audit.leaked;
      check_int (scheme ^ ": post-recovery leaked") 0
        o.Recovery.post.Audit.leaked;
      check_bool (scheme ^ ": post-recovery audit ok") true
        (Audit.ok o.Recovery.post)
  | exception Sched.Engine.Out_of_steps ->
      (* Only the lock-based scheme may block here: the victim died
         holding the lock and the survivors spin forever — the
         paper's §1 blocking argument (E10). Non-blocking schemes
         must always finish. *)
      if scheme <> "lockrc" then
        Alcotest.fail (scheme ^ ": engine ran out of steps")

let fault_tests =
  [
    tc "crash-mid-send strands crash_held, recovers leak-free (all schemes)"
      (fun () ->
        List.iter
          (fun scheme ->
            crash_mid_send scheme ~seed:31;
            crash_mid_send scheme ~seed:77)
          all_schemes);
  ]

(* ---------------- Timer-deadline saturation ------------------------- *)

let timer_tests =
  [
    tc "deadline saturates into the skiplist key range" (fun () ->
        (* overflow past max_int degrades to "effectively never" *)
        check_int "max timeout clamps" (max_int - 1)
          (Timer.deadline ~now_ns:0 ~timeout_ns:max_int);
        check_int "overflowing sum clamps"
          (max_int - 1)
          (Timer.deadline ~now_ns:(max_int - 5) ~timeout_ns:max_int);
        (* the reserved sentinel keys are never produced *)
        let lo = Timer.deadline ~now_ns:min_int ~timeout_ns:0 in
        check_bool "low end above min_int" true (lo > min_int);
        let d = Timer.deadline ~now_ns:100 ~timeout_ns:23 in
        check_int "ordinary sums untouched" 123 d);
    tc "boundary deadlines are schedulable; raw max_int still rejected"
      (fun () ->
        let cfg =
          Service.mm_config ~backend:B.Sim ~threads:1 ~capacity:64
            ~max_actors:4 ~buckets:4 ()
        in
        let mm = mm_of "wfrc" cfg in
        let svc = Service.create mm ~max_actors:4 ~buckets:4 ~seed:7 ~tid:0 in
        (match Service.wheel svc with
        | None -> Alcotest.fail "wfrc service must have a wheel"
        | Some w ->
            Timer.schedule w ~tid:0
              ~deadline:(Timer.deadline ~now_ns:0 ~timeout_ns:max_int)
              1;
            Timer.schedule w ~tid:0
              ~deadline:(Timer.deadline ~now_ns:min_int ~timeout_ns:0)
              2;
            fails_with ~substring:"reserved" (fun () ->
                Timer.schedule w ~tid:0 ~deadline:max_int 3);
            check_int "both boundary timers drain" 2
              (List.length (Timer.drain w ~tid:0)));
        ignore (Service.teardown svc ~tid:0));
  ]

(* ---------------- Registry sizing probe ----------------------------- *)

let probe_tests =
  [
    tc "probe surfaces the fixed-bucket degradation" (fun () ->
        let actors = 32 and buckets = 4 in
        let capacity = (2 * buckets) + 2 + (2 * actors) + 64 in
        let cfg =
          Service.mm_config ~backend:B.Sim ~threads:1 ~capacity
            ~max_actors:actors ~buckets ()
        in
        let mm = mm_of "wfrc" cfg in
        let svc =
          Service.create mm ~max_actors:actors ~buckets ~seed:3 ~tid:0
        in
        let spawned = ref 0 in
        for _ = 1 to actors do
          if Service.spawn svc ~tid:0 <> None then incr spawned
        done;
        check_bool "spawned enough to overload" true (!spawned >= 16);
        let p = Service.probe svc ~tid:0 in
        check_int "entries" !spawned p.Hmap.entries;
        check_bool "load factor is entries per bucket" true
          (abs_float (p.Hmap.load -. (float_of_int !spawned /. 4.)) < 0.01);
        check_bool "pigeonhole: some chain at least n/buckets" true
          (p.Hmap.max_chain * buckets >= !spawned);
        ignore (Service.teardown svc ~tid:0));
  ]

(* ---------------- Mailbox teardown idempotency ---------------------- *)

let destroy_tests =
  [
    tc "destroy is idempotent and finishes a crashed destroy (all schemes)"
      (fun () ->
        List.iter
          (fun scheme ->
            let cfg = small_cfg ~threads:1 ~capacity:16 () in
            let mm = mm_of scheme cfg in
            let q = Queue.create mm ~head_root:0 ~tail_root:1 ~tid:0 in
            Queue.enqueue q ~tid:0 1;
            Queue.enqueue q ~tid:0 2;
            check_int (scheme ^ ": leftovers discarded") 2
              (Queue.destroy q ~tid:0);
            check_int (scheme ^ ": second destroy is a no-op") 0
              (Queue.destroy q ~tid:0);
            (* a destroyer that crashed between the two root stores:
               head already null, tail still pinning the sentinel *)
            let q2 = Queue.create mm ~head_root:0 ~tail_root:1 ~tid:0 in
            let arena = Mm.arena mm in
            Mm.store_link mm ~tid:0 (Arena.root_addr arena 0) Value.null;
            check_int (scheme ^ ": adopting destroy finishes the clearing")
              0
              (Queue.destroy q2 ~tid:0);
            let r = Audit.run mm in
            check_int (scheme ^ ": nothing reachable") 0 r.Audit.reachable;
            check_int (scheme ^ ": nothing leaked") 0 r.Audit.leaked)
          all_schemes);
  ]

(* ---------------- Workload split (completed-ops rounding) ----------- *)

let split_tests =
  [
    tc "split_ops: completed equals requested over odd combos" (fun () ->
        List.iter
          (fun (threads, ops) ->
            let c = Workload.split_ops ~threads ~ops in
            check_int
              (Printf.sprintf "%d threads / %d ops sum" threads ops)
              ops
              (Array.fold_left ( + ) 0 c);
            let mx = Array.fold_left max 0 c
            and mn = Array.fold_left min max_int c in
            check_bool "spread stays within one op" true (mx - mn <= 1))
          [
            (3, 200_000);
            (7, 199_999);
            (6, 1);
            (4, 0);
            (5, 23);
            (16, 1_000_003);
          ]);
  ]

(* ---------------- Audit deferred closure ---------------------------- *)

(* Regression for the service-teardown leak misreport: a node whose
   reclamation waits on a buffered decrement keeps its whole link
   chain waiting with it, and the auditor must class that chain
   deferred (flush-reclaimable), not leaked. Build the exact shape:
   a -> b where b's own decrement has already flushed and a's is
   still parked. *)
let closure_tests =
  [
    tc "chain behind a parked decrement audits deferred, not leaked"
      (fun () ->
        let cfg =
          Mm.config ~backend:B.Sim ~threads:1 ~capacity:8 ~num_links:1
            ~num_data:1 ~num_roots:1 ~defer:2 ()
        in
        let mm = mm_of "wfrc_deferred" cfg in
        let arena = Mm.arena mm in
        let a = Mm.alloc mm ~tid:0 in
        let b = Mm.alloc mm ~tid:0 in
        Mm.store_link mm ~tid:0 (Arena.link_addr arena a 0) b;
        (* flush b's decrement (and a filler's) so only the link keeps
           b alive; a's decrement then parks alone in the row *)
        Mm.release mm ~tid:0 b;
        let f = Mm.alloc mm ~tid:0 in
        Mm.release mm ~tid:0 f;
        Mm.release mm ~tid:0 a;
        let r = Audit.run mm in
        check_int "nothing reachable" 0 r.Audit.reachable;
        check_int "leaked" 0 r.Audit.leaked;
        check_int "chain is deferred end to end" 2 r.Audit.deferred;
        check_bool "audit ok" true (Audit.ok r);
        check_bool "no violations" true (r.Audit.violations = []));
  ]

let suite =
  mailbox_tests @ fault_tests @ timer_tests @ probe_tests @ destroy_tests
  @ split_tests @ closure_tests
