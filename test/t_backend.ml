(* The pluggable memory backends: padded-cell semantics, the
   zero-hook-dispatch guarantee of [Native], and Sim/Native
   behavioural equivalence for every registered scheme (the backends
   must differ only in cost model, never in results). *)

open Helpers
module B = Atomics.Backend

let cell_tests =
  [
    tc "name/of_string round-trip" (fun () ->
        check_string "sim" "sim" (B.name (B.of_string "sim"));
        check_string "native" "native" (B.name (B.of_string "native"));
        fails_with ~substring:"of_string" (fun () -> B.of_string "gpu"));
    tc "contended cell occupies a full line pair" (fun () ->
        let c = B.make_contended B.Native 7 in
        check_int "block size" B.cache_line_words (Obj.size (Obj.repr c));
        (* a plain cell for comparison *)
        check_int "plain size" 1 (Obj.size (Obj.repr (B.make B.Native 7))));
    tc "padded cell has figure 2 semantics" (fun () ->
        List.iter
          (fun c ->
            check_int "init" 10 (Atomic.get c);
            check_int "faa returns old" 10 (B.faa B.Native c 5);
            check_int "faa added" 15 (B.read B.Native c);
            check_bool "cas hit" true (B.cas B.Native c ~old:15 ~nw:1);
            check_bool "cas miss" false (B.cas B.Native c ~old:15 ~nw:99);
            check_int "swap returns old" 1 (B.swap B.Native c 7);
            B.write B.Native c 42;
            check_int "write" 42 (B.read B.Native c))
          [ B.make_contended B.Native 10; B.make B.Native 10 ]);
    tc "padded cells survive a GC cycle" (fun () ->
        let cells = Array.init 100 (fun i -> B.make_contended B.Native i) in
        Gc.full_major ();
        Array.iteri
          (fun i c -> check_int "value" i (Atomic.get c))
          cells);
    tc "prims modules expose matching names" (fun () ->
        let (module S) = B.prims B.Sim in
        let (module N) = B.prims B.Native in
        check_string "sim" "sim" S.name;
        check_string "native" "native" N.name);
  ]

(* A deterministic single-thread client workload that is legal under
   every scheme's protocol (the retire-based schemes need the
   enter/exit bracket and [terminate] at unlink time; the RC schemes
   treat both as cheap bookkeeping). Returns a full behavioural trace
   plus the final counter totals — everything observable. *)
let run_workload ~backend scheme =
  let cfg =
    Mm.config ~backend ~threads:2 ~capacity:64 ~num_links:1 ~num_data:1
      ~num_roots:2 ()
  in
  let mm = Harness.Registry.instantiate scheme cfg in
  let root = Arena.root_addr (Mm.arena mm) 0 in
  let rng = Sched.Rng.create 91_001 in
  let trace = ref [] in
  let push v = trace := v :: !trace in
  let ptr p = if Value.is_null p then 0 else Value.handle p in
  for _step = 1 to 300 do
    Mm.enter_op mm ~tid:0;
    (match Sched.Rng.int rng 3 with
    | 0 ->
        (* alloc, publish briefly via the root, retire *)
        (try
           let p = Mm.alloc mm ~tid:0 in
           push (ptr p);
           Mm.release mm ~tid:0 p;
           Mm.terminate mm ~tid:0 p
         with Mm.Out_of_memory -> push (-1))
    | 1 -> (
        let p = Mm.deref mm ~tid:0 root in
        push (ptr p);
        if not (Value.is_null p) then Mm.release mm ~tid:0 p)
    | _ -> (
        try
          let b = Mm.alloc mm ~tid:0 in
          let old = Mm.deref mm ~tid:0 root in
          let swapped = Mm.cas_link mm ~tid:0 root ~old ~nw:b in
          push (ptr b);
          push (ptr old);
          push (if swapped then 1 else 0);
          if swapped && not (Value.is_null old) then begin
            Mm.release mm ~tid:0 old;
            Mm.terminate mm ~tid:0 old
          end;
          if not (Value.is_null old) && not swapped then
            Mm.release mm ~tid:0 old;
          Mm.release mm ~tid:0 b
        with Mm.Out_of_memory -> push (-1)));
    Mm.exit_op mm ~tid:0
  done;
  (* unlink whatever the root still holds, then quiesce *)
  Mm.enter_op mm ~tid:0;
  let last = Mm.deref mm ~tid:0 root in
  if not (Value.is_null last) then begin
    ignore (Mm.cas_link mm ~tid:0 root ~old:last ~nw:Value.null);
    Mm.release mm ~tid:0 last;
    Mm.terminate mm ~tid:0 last
  end;
  Mm.exit_op mm ~tid:0;
  push (Mm.free_count mm);
  Mm.validate mm;
  let counters =
    String.concat ","
      (List.map
         (fun (ev, n) ->
           Printf.sprintf "%s=%d" (Atomics.Counters.event_name ev) n)
         (Atomics.Counters.snapshot (Mm.counters mm)))
  in
  (List.rev !trace, counters)

let stack_roundtrip ~backend =
  let cfg =
    Mm.config ~backend ~threads:2 ~capacity:32 ~num_links:1 ~num_data:1
      ~num_roots:1 ()
  in
  let mm = Harness.Registry.instantiate "wfrc" cfg in
  let stack = Structures.Stack.create mm ~root:0 in
  for i = 1 to 20 do
    Structures.Stack.push stack ~tid:0 (i * i)
  done;
  Structures.Stack.drain stack ~tid:0

let equivalence_tests =
  List.map
    (fun scheme ->
      tc (scheme ^ " behaves identically on both backends") (fun ()
      ->
        let sim_trace, sim_ctr = run_workload ~backend:B.Sim scheme in
        let nat_trace, nat_ctr = run_workload ~backend:B.Native scheme in
        Alcotest.(check (list int)) "trace" sim_trace nat_trace;
        check_string "counters" sim_ctr nat_ctr))
    Harness.Registry.names
  @ [
      tc "stack round-trip is backend-independent" (fun () ->
          Alcotest.(check (list int))
            "drain" (stack_roundtrip ~backend:B.Sim)
            (stack_roundtrip ~backend:B.Native));
    ]

(* The acceptance property of the native backend: a full manager
   workload crosses ZERO scheduling points, while the same workload on
   the sim backend crosses one per primitive. *)
let hook_workload ~backend =
  let hits = ref 0 in
  Atomics.Schedpoint.with_hook
    (fun () -> incr hits)
    (fun () ->
      let cfg =
        Mm.config ~backend ~threads:2 ~capacity:32 ~num_links:1 ~num_data:1
          ~num_roots:1 ()
      in
      let mm = Harness.Registry.instantiate "wfrc" cfg in
      let root = Arena.root_addr (Mm.arena mm) 0 in
      Mm.enter_op mm ~tid:0;
      for _ = 1 to 50 do
        let p = Mm.alloc mm ~tid:0 in
        Mm.store_link mm ~tid:0 root p;
        let q = Mm.deref mm ~tid:0 root in
        Mm.release mm ~tid:0 q;
        ignore (Mm.cas_link mm ~tid:0 root ~old:p ~nw:Value.null);
        Mm.release mm ~tid:0 p;
        Mm.terminate mm ~tid:0 p
      done;
      Mm.exit_op mm ~tid:0);
  !hits

let hook_tests =
  [
    tc "native manager performs zero hook dispatches" (fun () ->
        check_int "hits" 0 (hook_workload ~backend:B.Native));
    tc "sim manager crosses a scheduling point per primitive" (fun () ->
        check_bool "hits > 1000"
          true
          (hook_workload ~backend:B.Sim > 1000));
    tc "native backoff never consults the hook" (fun () ->
        let hits = ref 0 in
        Atomics.Schedpoint.with_hook
          (fun () -> incr hits)
          (fun () ->
            let b = Atomics.Backoff.create ~backend:B.Native () in
            for _ = 1 to 10 do
              Atomics.Backoff.once b
            done);
        check_int "hits" 0 !hits);
  ]

let suite = cell_tests @ equivalence_tests @ hook_tests
