(* The pluggable memory backends: padded-cell semantics, the
   zero-hook-dispatch guarantee of [Native], and Sim/Native
   behavioural equivalence for every registered scheme (the backends
   must differ only in cost model, never in results). *)

open Helpers
module B = Atomics.Backend

let cell_tests =
  [
    tc "name/of_string round-trip" (fun () ->
        check_string "sim" "sim" (B.name (B.of_string "sim"));
        check_string "native" "native" (B.name (B.of_string "native"));
        fails_with ~substring:"of_string" (fun () -> B.of_string "gpu"));
    tc "contended cell occupies a full line pair" (fun () ->
        let c = B.make_contended B.Native 7 in
        check_int "block size" B.cache_line_words (Obj.size (Obj.repr c));
        (* a plain cell for comparison *)
        check_int "plain size" 1 (Obj.size (Obj.repr (B.make B.Native 7))));
    tc "padded cell has figure 2 semantics" (fun () ->
        List.iter
          (fun c ->
            check_int "init" 10 (Atomic.get c);
            check_int "faa returns old" 10 (B.faa B.Native c 5);
            check_int "faa added" 15 (B.read B.Native c);
            check_bool "cas hit" true (B.cas B.Native c ~old:15 ~nw:1);
            check_bool "cas miss" false (B.cas B.Native c ~old:15 ~nw:99);
            check_int "swap returns old" 1 (B.swap B.Native c 7);
            B.write B.Native c 42;
            check_int "write" 42 (B.read B.Native c))
          [ B.make_contended B.Native 10; B.make B.Native 10 ]);
    tc "padded cells survive a GC cycle" (fun () ->
        let cells = Array.init 100 (fun i -> B.make_contended B.Native i) in
        Gc.full_major ();
        Array.iteri
          (fun i c -> check_int "value" i (Atomic.get c))
          cells);
    tc "prims modules expose matching names" (fun () ->
        let (module S) = B.prims B.Sim in
        let (module N) = B.prims B.Native in
        check_string "sim" "sim" S.name;
        check_string "native" "native" N.name);
  ]

(* A deterministic single-thread client workload that is legal under
   every scheme's protocol (the retire-based schemes need the
   enter/exit bracket and [terminate] at unlink time; the RC schemes
   treat both as cheap bookkeeping). Returns a full behavioural trace
   plus the final counter totals — everything observable. *)
let run_workload ?rep ~backend scheme =
  let cfg =
    Mm.config ~backend ?rep ~threads:2 ~capacity:64 ~num_links:1 ~num_data:1
      ~num_roots:2 ()
  in
  let mm = Harness.Registry.instantiate scheme cfg in
  let root = Arena.root_addr (Mm.arena mm) 0 in
  let rng = Sched.Rng.create 91_001 in
  let trace = ref [] in
  let push v = trace := v :: !trace in
  let ptr p = if Value.is_null p then 0 else Value.handle p in
  for _step = 1 to 300 do
    Mm.enter_op mm ~tid:0;
    (match Sched.Rng.int rng 3 with
    | 0 ->
        (* alloc, publish briefly via the root, retire *)
        (try
           let p = Mm.alloc mm ~tid:0 in
           push (ptr p);
           Mm.release mm ~tid:0 p;
           Mm.terminate mm ~tid:0 p
         with Mm.Out_of_memory | Mm.Out_of_nodes _ -> push (-1))
    | 1 -> (
        let p = Mm.deref mm ~tid:0 root in
        push (ptr p);
        if not (Value.is_null p) then Mm.release mm ~tid:0 p)
    | _ -> (
        try
          let b = Mm.alloc mm ~tid:0 in
          let old = Mm.deref mm ~tid:0 root in
          let swapped = Mm.cas_link mm ~tid:0 root ~old ~nw:b in
          push (ptr b);
          push (ptr old);
          push (if swapped then 1 else 0);
          if swapped && not (Value.is_null old) then begin
            Mm.release mm ~tid:0 old;
            Mm.terminate mm ~tid:0 old
          end;
          if not (Value.is_null old) && not swapped then
            Mm.release mm ~tid:0 old;
          Mm.release mm ~tid:0 b
        with Mm.Out_of_memory | Mm.Out_of_nodes _ -> push (-1)));
    Mm.exit_op mm ~tid:0
  done;
  (* unlink whatever the root still holds, then quiesce *)
  Mm.enter_op mm ~tid:0;
  let last = Mm.deref mm ~tid:0 root in
  if not (Value.is_null last) then begin
    ignore (Mm.cas_link mm ~tid:0 root ~old:last ~nw:Value.null);
    Mm.release mm ~tid:0 last;
    Mm.terminate mm ~tid:0 last
  end;
  Mm.exit_op mm ~tid:0;
  push (Mm.free_count mm);
  Mm.validate mm;
  let counters =
    String.concat ","
      (List.map
         (fun (ev, n) ->
           Printf.sprintf "%s=%d" (Atomics.Counters.event_name ev) n)
         (Atomics.Counters.snapshot (Mm.counters mm)))
  in
  (List.rev !trace, counters)

let stack_roundtrip ?rep ~backend () =
  let cfg =
    Mm.config ~backend ?rep ~threads:2 ~capacity:32 ~num_links:1 ~num_data:1
      ~num_roots:1 ()
  in
  let mm = Harness.Registry.instantiate "wfrc" cfg in
  let stack = Structures.Stack.create mm ~root:0 in
  for i = 1 to 20 do
    Structures.Stack.push stack ~tid:0 (i * i)
  done;
  Structures.Stack.drain stack ~tid:0

(* Every scheme, against BOTH native cell representations: the boxed
   atomic array and the unboxed word store must each reproduce the
   Sim trace and counter totals exactly. *)
let equivalence_tests =
  List.concat_map
    (fun scheme ->
      let sim = lazy (run_workload ~backend:B.Sim scheme) in
      List.map
        (fun rep ->
          tc
            (Printf.sprintf "%s on native %s matches sim" scheme
               (B.rep_name rep))
            (fun () ->
              let sim_trace, sim_ctr = Lazy.force sim in
              let nat_trace, nat_ctr =
                run_workload ~backend:B.Native ~rep scheme
              in
              Alcotest.(check (list int)) "trace" sim_trace nat_trace;
              check_string "counters" sim_ctr nat_ctr))
        [ B.Boxed; B.Unboxed ])
    Harness.Registry.names
  @ List.map
      (fun rep ->
        tc
          (Printf.sprintf "stack round-trip is backend-independent (%s)"
             (B.rep_name rep))
          (fun () ->
            Alcotest.(check (list int))
              "drain"
              (stack_roundtrip ~backend:B.Sim ())
              (stack_roundtrip ~backend:B.Native ~rep ())))
      [ B.Boxed; B.Unboxed ]

(* The sharded native store must not change what any scheme computes.
   Raw handle traces are not comparable across allocators — a free
   list has set semantics, and the cache legitimately reuses nodes in
   a different order than each scheme's legacy placement (wfrc's
   F5-F6 heuristic, hp/ebr scan order) — so this runs the same
   deterministic client workload and records every op-level
   observable that IS allocator-independent: alloc success/OOM, deref
   null-ness, CAS outcomes, and the final free count. Node identity
   is checked against a shadow of the root ("deref returns exactly
   the node last stored") inside the run rather than across runs. *)
let run_shape_workload ?(shards = 1) ?(batch = 1) ~backend scheme =
  let cfg =
    Mm.config ~backend ~shards ~batch ~threads:2 ~capacity:64 ~num_links:1
      ~num_data:1 ~num_roots:2 ()
  in
  let mm = Harness.Registry.instantiate scheme cfg in
  let root = Arena.root_addr (Mm.arena mm) 0 in
  let rng = Sched.Rng.create 91_001 in
  let shadow = ref Value.null in
  let trace = ref [] in
  let push v = trace := v :: !trace in
  let h p = if Value.is_null p then 0 else Value.handle p in
  let check_root p =
    check_int "deref returns the node last stored" (h !shadow) (h p)
  in
  for _step = 1 to 300 do
    Mm.enter_op mm ~tid:0;
    (match Sched.Rng.int rng 3 with
    | 0 -> (
        try
          let p = Mm.alloc mm ~tid:0 in
          push 1;
          Mm.release mm ~tid:0 p;
          Mm.terminate mm ~tid:0 p
        with Mm.Out_of_memory | Mm.Out_of_nodes _ -> push (-1))
    | 1 -> (
        let p = Mm.deref mm ~tid:0 root in
        check_root p;
        push (if Value.is_null p then 0 else 2);
        if not (Value.is_null p) then Mm.release mm ~tid:0 p)
    | _ -> (
        try
          let b = Mm.alloc mm ~tid:0 in
          let old = Mm.deref mm ~tid:0 root in
          check_root old;
          let swapped = Mm.cas_link mm ~tid:0 root ~old ~nw:b in
          if swapped then shadow := b;
          push (if Value.is_null old then 0 else 2);
          push (if swapped then 1 else 0);
          if swapped && not (Value.is_null old) then begin
            Mm.release mm ~tid:0 old;
            Mm.terminate mm ~tid:0 old
          end;
          if (not (Value.is_null old)) && not swapped then
            Mm.release mm ~tid:0 old;
          Mm.release mm ~tid:0 b
        with Mm.Out_of_memory | Mm.Out_of_nodes _ -> push (-1)));
    Mm.exit_op mm ~tid:0
  done;
  Mm.enter_op mm ~tid:0;
  let last = Mm.deref mm ~tid:0 root in
  check_root last;
  if not (Value.is_null last) then begin
    ignore (Mm.cas_link mm ~tid:0 root ~old:last ~nw:Value.null);
    Mm.release mm ~tid:0 last;
    Mm.terminate mm ~tid:0 last
  end;
  Mm.exit_op mm ~tid:0;
  push (Mm.free_count mm);
  Mm.validate mm;
  List.rev !trace

let sharded_equivalence_tests =
  List.concat_map
    (fun scheme ->
      List.map
        (fun shards ->
          tc
            (Printf.sprintf "%s with %d-stripe store matches sim op-for-op"
               scheme shards)
            (fun () ->
              let sim_trace = run_shape_workload ~backend:B.Sim scheme in
              let nat_trace =
                run_shape_workload ~backend:B.Native ~shards ~batch:4 scheme
              in
              Alcotest.(check (list int)) "op results" sim_trace nat_trace))
        [ 1; 2; 4 ])
    Harness.Registry.names

(* Custody conservation with a populated store: drive nodes into a
   thread cache and a remote stripe's return buffer, then check that
   inspection still finds every node exactly once. tid 1 drains its
   home stripe (capacity 32, 2 stripes, so handles 17..32); tid 0
   frees all 16 — its cache fills and every spill is remote, so the
   return buffer fills and the overflow falls back to direct chain
   pushes. *)
let freestore_custody_tests =
  [
    tc "populated caches and return buffers conserve every node" (fun () ->
        let backend = B.Native in
        let layout = Shmem.Layout.create ~num_links:1 ~num_data:1 in
        let arena = Arena.create ~backend ~layout ~capacity:32 ~num_roots:0 () in
        let ctr = Atomics.Counters.create ~backend ~threads:2 () in
        let fs =
          Shmem.Freestore.create ~backend ~arena ~counters:ctr ~shards:2
            ~batch:2 ~threads:2 ()
        in
        let taken =
          List.init 16 (fun _ ->
              match Shmem.Freestore.alloc fs ~tid:1 with
              | Some p -> p
              | None -> Alcotest.fail "stripe 1 ran dry early")
        in
        List.iter (fun p -> Shmem.Freestore.free fs ~tid:0 p) taken;
        check_bool "tid 0 cache populated" true
          (Shmem.Freestore.cached fs ~tid:0 > 0);
        check_bool "return buffers populated" true
          (Shmem.Freestore.buffered fs > 0);
        check_bool "remote frees recorded" true
          (Atomics.Counters.total ctr Atomics.Counters.Free_remote > 0);
        let seen = Array.make 33 false in
        let count = ref 0 in
        Shmem.Freestore.iter_free fs
          ~violation:(fun s -> Alcotest.fail s)
          ~f:(fun p ->
            let h = Value.handle p in
            check_bool "no duplicate" false seen.(h);
            seen.(h) <- true;
            incr count);
        check_int "every node accounted for" 32 !count;
        (* All of it is allocatable again by tid 0, whose full pass
           reaches its own cache, both stripe chains and both return
           buffers. (tid 1 could not: tid 0's cache is private — the
           reason managers retry OOM instead of trusting one empty
           pass.) *)
        for _ = 1 to 32 do
          match Shmem.Freestore.alloc fs ~tid:0 with
          | Some _ -> ()
          | None -> Alcotest.fail "node unreachable to alloc"
        done;
        check_bool "then empty" true (Shmem.Freestore.alloc fs ~tid:0 = None));
    tc "auditor conserves a manager with populated caches/buffers" (fun () ->
        let cfg =
          Mm.config ~backend:B.Native ~shards:2 ~batch:2 ~threads:2
            ~capacity:32 ~num_links:1 ~num_data:1 ~num_roots:1 ()
        in
        let mm = Harness.Registry.instantiate "lfrc" cfg in
        Mm.enter_op mm ~tid:1;
        let nodes = List.init 16 (fun _ -> Mm.alloc mm ~tid:1) in
        Mm.exit_op mm ~tid:1;
        Mm.enter_op mm ~tid:0;
        List.iter
          (fun p ->
            Mm.release mm ~tid:0 p;
            Mm.terminate mm ~tid:0 p)
          nodes;
        Mm.exit_op mm ~tid:0;
        let ctr = Mm.counters mm in
        check_bool "remote frees happened" true
          (Atomics.Counters.total ctr Atomics.Counters.Free_remote > 0);
        check_bool "cache spills happened" true
          (Atomics.Counters.total ctr Atomics.Counters.Cache_spill > 0);
        let r = Harness.Audit.run mm in
        check_bool
          ("audit ok: " ^ Harness.Audit.to_string r)
          true (Harness.Audit.ok r);
        check_int "everything is free custody" 32 r.Harness.Audit.free;
        check_int "nothing leaked" 0 r.Harness.Audit.leaked);
  ]

(* A parked allocator is woken by a remote free: tid 1 drains the
   store dry and parks on it; tid 0 then frees a node, whose stripe
   push must wake the parker. *)
let park_wake_tests =
  [
    tc "a parked thread is woken by a remote free" (fun () ->
        let backend = B.Native in
        let layout = Shmem.Layout.create ~num_links:1 ~num_data:1 in
        let arena = Arena.create ~backend ~layout ~capacity:8 ~num_roots:0 () in
        let ctr = Atomics.Counters.create ~backend ~threads:2 () in
        let fs =
          Shmem.Freestore.create ~backend ~arena ~counters:ctr ~shards:1
            ~batch:1 ~threads:2 ()
        in
        (* tid 0 drains the store dry *)
        let drained =
          List.init 8 (fun _ ->
              match Shmem.Freestore.alloc fs ~tid:0 with
              | Some p -> p
              | None -> Alcotest.fail "store ran dry early")
        in
        let got = Atomic.make Value.null in
        let waiter =
          Domain.spawn (fun () ->
              let rec go () =
                match Shmem.Freestore.alloc fs ~tid:1 with
                | Some p -> Atomic.set got p
                | None ->
                    (* untimed is safe here: the main thread frees only
                       after it has seen this waiter registered, and the
                       eventcount generation closes the publish/park
                       race — production callers use finite timeouts
                       because cache-local frees generate no wake *)
                    Shmem.Freestore.wait_free fs ~tid:1 ~timeout_ns:(-1);
                    go ()
              in
              go ())
        in
        (* only free once the waiter is actually parked, so the wake
           path (not just polling) is what resumes it *)
        while Shmem.Freestore.waiters fs = 0 do
          Domain.cpu_relax ()
        done;
        (* tid 0's cache holds 2*batch nodes before it spills, and
           cache-local frees are invisible (no wake) — free enough to
           force a spill, whose stripe push carries the wake *)
        List.iteri
          (fun i p -> if i < 3 then Shmem.Freestore.free fs ~tid:0 p)
          drained;
        Domain.join waiter;
        check_bool "waiter obtained the freed node" false
          (Value.is_null (Atomic.get got));
        check_bool "waiter parked" true
          (Atomics.Counters.total ctr Atomics.Counters.Park_wait > 0);
        check_bool "freeing thread woke it" true
          (Atomics.Counters.total ctr Atomics.Counters.Park_wake > 0));
  ]

(* The acceptance property of the native backend: a full manager
   workload crosses ZERO scheduling points, while the same workload on
   the sim backend crosses one per primitive. *)
let hook_workload ~backend =
  let hits = ref 0 in
  Atomics.Schedpoint.with_hook
    (fun () -> incr hits)
    (fun () ->
      let cfg =
        Mm.config ~backend ~threads:2 ~capacity:32 ~num_links:1 ~num_data:1
          ~num_roots:1 ()
      in
      let mm = Harness.Registry.instantiate "wfrc" cfg in
      let root = Arena.root_addr (Mm.arena mm) 0 in
      Mm.enter_op mm ~tid:0;
      for _ = 1 to 50 do
        let p = Mm.alloc mm ~tid:0 in
        Mm.store_link mm ~tid:0 root p;
        let q = Mm.deref mm ~tid:0 root in
        Mm.release mm ~tid:0 q;
        ignore (Mm.cas_link mm ~tid:0 root ~old:p ~nw:Value.null);
        Mm.release mm ~tid:0 p;
        Mm.terminate mm ~tid:0 p
      done;
      Mm.exit_op mm ~tid:0);
  !hits

let hook_tests =
  [
    tc "native manager performs zero hook dispatches" (fun () ->
        check_int "hits" 0 (hook_workload ~backend:B.Native));
    tc "sim manager crosses a scheduling point per primitive" (fun () ->
        check_bool "hits > 1000"
          true
          (hook_workload ~backend:B.Sim > 1000));
    tc "native backoff never consults the hook" (fun () ->
        let hits = ref 0 in
        Atomics.Schedpoint.with_hook
          (fun () -> incr hits)
          (fun () ->
            let b = Atomics.Backoff.create ~backend:B.Native () in
            for _ = 1 to 10 do
              Atomics.Backoff.once b
            done);
        check_int "hits" 0 !hits);
  ]

let suite =
  cell_tests @ equivalence_tests @ sharded_equivalence_tests
  @ freestore_custody_tests @ park_wake_tests @ hook_tests
