(* The wfrc_lint protocol checker: quiet on correct idioms, loud on
   each seeded fixture violation, and clean on the real library tree.

   Fixtures live in test/lint_fixtures/ (no dune file — they are
   parsed by the lint, never compiled). *)

let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else "test/lint_fixtures"

let fx name = Filename.concat fixture_dir name

let rules vs = List.map (fun (v : Lint.violation) -> v.rule) vs

let check_rules what expected actual =
  Alcotest.(check (list string))
    what expected
    (List.sort_uniq compare (rules actual))

(* ---- fixtures: each seeded violation is caught ------------------- *)

let test_unreleased_deref () =
  let vs = Lint.run ~roots:[ fx "fx_unreleased_deref.ml" ] in
  check_rules "unbalanced-deref flagged" [ "unbalanced-deref" ] vs;
  Alcotest.(check int) "exactly one violation" 1 (List.length vs)

let test_branch_leak () =
  let vs = Lint.run ~roots:[ fx "fx_branch_leak.ml" ] in
  check_rules "branch leak flagged" [ "unbalanced-deref" ] vs

let test_raw_primitives () =
  let vs = Lint.run ~roots:[ fx "fx_raw_primitives.ml" ] in
  check_rules "raw Primitives flagged" [ "raw-primitives" ] vs;
  Alcotest.(check bool)
    "one per use site" true
    (List.length vs >= 2)

let test_raw_freestore () =
  let vs = Lint.run ~roots:[ fx "fx_raw_freestore.ml" ] in
  check_rules "raw Freestore flagged" [ "raw-primitives" ] vs

let test_raw_words () =
  let vs = Lint.run ~roots:[ fx "fx_raw_words.ml" ] in
  check_rules "raw Words flagged" [ "raw-primitives" ] vs;
  Alcotest.(check bool) "one per use site" true (List.length vs >= 2)

let test_deferred_unflushed () =
  let vs = Lint.run ~roots:[ fx "fx_deferred_unflushed.ml" ] in
  check_rules "unflushed buffered release flagged" [ "unbalanced-deref" ] vs;
  Alcotest.(check int) "exactly one violation" 1 (List.length vs)

let test_dead_counter () =
  let vs = Lint.run ~roots:[ fx "fx_dead_counter" ] in
  check_rules "dead counter flagged" [ "counter-coverage" ] vs;
  match vs with
  | [ v ] ->
      Alcotest.(check bool)
        "names the dead constructor" true
        (let msg = Lint.to_string v in
         let re = "Never_incremented" in
         let rec contains i =
           i + String.length re <= String.length msg
           && (String.sub msg i (String.length re) = re || contains (i + 1))
         in
         contains 0)
  | vs ->
      Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_borrowed_helper () =
  let vs = Lint.run ~roots:[ fx "fx_borrowed_helper.ml" ] in
  check_rules "borrowing helper does not discharge" [ "unbalanced-deref" ] vs;
  Alcotest.(check int) "exactly one violation" 1 (List.length vs)

let test_relaxed_stub () =
  let vs = Lint.run ~roots:[ fx "fx_relaxed_stub.c" ] in
  check_rules "relaxed ordering flagged" [ "stub-ordering" ] vs;
  Alcotest.(check int) "exactly one violation" 1 (List.length vs)

(* ---- clean code stays clean -------------------------------------- *)

let test_clean_example () =
  let vs = Lint.run ~roots:[ fx "clean_example.ml" ] in
  Alcotest.(check int)
    (String.concat "\n" ("clean_example is quiet" :: List.map Lint.to_string vs)
    |> String.map (fun c -> if c = '\n' then ' ' else c))
    0 (List.length vs)

(* Counter constructed only from a C stub: the whole-word token in the
   decommented stub source keeps it alive. *)
let test_clean_counter_c () =
  let vs = Lint.run ~roots:[ fx "clean_counter_c" ] in
  Alcotest.(check int) "C-side counter liveness accepted" 0 (List.length vs)

(* Buffered release whose only flush site is the quiescence-driven
   flush_all: still a discharge. *)
let test_clean_deferred_quiescent () =
  let vs = Lint.run ~roots:[ fx "clean_deferred_quiescent.ml" ] in
  Alcotest.(check int) "quiescence flush accepted" 0 (List.length vs)

(* The real library tree must lint clean — same invocation CI uses.
   Resolve lib/ relative to the dune workspace root when running from
   the _build sandbox. *)
let lib_dir () =
  let candidates =
    [ "lib"; "../lib"; "../../lib"; "../../../lib"; "../../../../lib" ]
  in
  List.find_opt
    (fun d -> Sys.file_exists (Filename.concat d "mm_intf"))
    candidates

let test_lib_clean () =
  match lib_dir () with
  | None -> () (* source tree not reachable from the sandbox: skip *)
  | Some lib ->
      let vs = Lint.run ~roots:[ lib ] in
      List.iter (fun v -> Printf.printf "%s\n" (Lint.to_string v)) vs;
      Alcotest.(check int) "lib/ lints clean" 0 (List.length vs)

let suite =
  [
    Alcotest.test_case "fixture: unreleased deref" `Quick test_unreleased_deref;
    Alcotest.test_case "fixture: branch leak" `Quick test_branch_leak;
    Alcotest.test_case "fixture: raw Primitives" `Quick test_raw_primitives;
    Alcotest.test_case "fixture: raw Freestore" `Quick test_raw_freestore;
    Alcotest.test_case "fixture: raw Words" `Quick test_raw_words;
    Alcotest.test_case "fixture: dead counter" `Quick test_dead_counter;
    Alcotest.test_case "fixture: buffered release without a flush site"
      `Quick test_deferred_unflushed;
    Alcotest.test_case "fixture: borrowing helper" `Quick test_borrowed_helper;
    Alcotest.test_case "fixture: relaxed stub ordering" `Quick
      test_relaxed_stub;
    Alcotest.test_case "clean example is quiet" `Quick test_clean_example;
    Alcotest.test_case "clean: C-side counter liveness" `Quick
      test_clean_counter_c;
    Alcotest.test_case "clean: quiescence-driven flush" `Quick
      test_clean_deferred_quiescent;
    Alcotest.test_case "library tree lints clean" `Quick test_lib_clean;
  ]
