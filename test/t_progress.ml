(* The static progress analyzer (wfrc_lint --pass progress):

   - the real tree carries its contracts: zero violations, every
     lib/core cycle statically-bounded or helping-bounded, alloc's
     helping loop recognized via its helping witness;
   - the [@@wfrc.expect_unbounded] assertions on the lock-free
     baselines hold (Lfrc.deref is still the Valois retry);
   - a seeded mutation that strips the helping vocabulary from the
     wfrc alloc loop flips the analyzer red;
   - classification is stable under mechanical alpha-renaming and
     let-flattening of the core sources (the classifier keys on
     structure, not spelling). *)

module P = Lint.Progress

(* Resolve lib/ relative to the dune sandbox, as t_lint does. *)
let lib_dir () =
  let candidates =
    [ "lib"; "../lib"; "../../lib"; "../../../lib"; "../../../../lib" ]
  in
  List.find_opt
    (fun d -> Sys.file_exists (Filename.concat d "mm_intf"))
    candidates

let with_lib f = match lib_dir () with None -> () | Some lib -> f lib

let basename_is name file = Filename.basename file = name

(* ---- the real tree ------------------------------------------------ *)

let test_tree_clean () =
  with_lib @@ fun lib ->
  let r = P.analyze ~roots:[ lib ] in
  List.iter
    (fun (v : P.violation) ->
      Printf.printf "%s:%d: %s\n" v.v_file v.v_line v.v_msg)
    r.violations;
  Alcotest.(check int) "zero progress violations" 0 (List.length r.violations)

let test_core_is_bounded_or_helping () =
  with_lib @@ fun lib ->
  let r = P.analyze ~roots:[ lib ] in
  let core =
    List.filter
      (fun (c : P.cls) ->
        List.mem (Filename.basename c.c_file)
          [ "gc.ml"; "ann.ml"; "rcbuf.ml"; "wfrc.ml"; "wfrc_deferred.ml" ])
      r.classifications
  in
  Alcotest.(check bool)
    "core has a substantial cycle inventory" true
    (List.length core > 15);
  List.iter
    (fun (c : P.cls) ->
      if not (List.mem c.c_level [ P.Bounded; P.Helping ]) then
        Alcotest.failf "core cycle exceeds wait-freedom: %s" (P.pp_cls c))
    core

let test_alloc_loop_is_helping () =
  with_lib @@ fun lib ->
  let r = P.analyze ~roots:[ lib ] in
  match
    List.find_opt
      (fun (c : P.cls) ->
        basename_is "gc.ml" c.c_file && c.c_func = "alloc_loop")
      r.classifications
  with
  | None -> Alcotest.fail "gc.ml alloc_loop not classified"
  | Some c ->
      Alcotest.(check string)
        "alloc_loop is helping-bounded" "helping-bounded"
        (P.level_name c.c_level);
      Alcotest.(check bool)
        "evidence names the helping call" true
        (let has sub s =
           let n = String.length sub and m = String.length s in
           let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         has "helping" c.c_evidence)

let test_expectations_hold () =
  with_lib @@ fun lib ->
  let r = P.analyze ~roots:[ lib ] in
  Alcotest.(check bool)
    "expectations are declared" true
    (List.length r.expectations >= 4);
  List.iter
    (fun (file, fn, ok) ->
      if not ok then
        Alcotest.failf "expect_unbounded regressed: %s %s" file fn)
    r.expectations;
  Alcotest.(check bool)
    "Lfrc.deref is asserted expected-unbounded" true
    (List.exists
       (fun (file, fn, _) -> basename_is "lfrc.ml" file && fn = "deref")
       r.expectations)

(* ---- seeded mutation flips red ------------------------------------ *)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let replace ~sub ~by s =
  let b = Buffer.create (String.length s) in
  let n = String.length sub in
  let i = ref 0 in
  while !i <= String.length s - n do
    if String.sub s !i n = sub then begin
      Buffer.add_string b by;
      i := !i + n
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.add_substring b s !i (String.length s - !i);
  Buffer.contents b

let in_temp_copy src f =
  let dir = Filename.temp_file "progress" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let file = Filename.concat dir "gc.ml" in
  let oc = open_out_bin file in
  output_string oc src;
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove file;
      Sys.rmdir dir)
    (fun () -> f file)

let test_mutation_flips_red () =
  with_lib @@ fun lib ->
  let src = read_file (Filename.concat lib "core/gc.ml") in
  (* Strip the helping vocabulary: the announcement-slot read and the
     dead-cache adoption are what make alloc_loop helping-bounded. *)
  let mutated =
    src
    |> replace ~sub:"hw_ann" ~by:"hw_qnn"
    |> replace ~sub:"adopt_dead_caches" ~by:"takeover_dead_caches"
  in
  in_temp_copy mutated @@ fun file ->
  let r = P.analyze ~roots:[ file ] in
  Alcotest.(check bool)
    "mutated alloc loop violates wait_free" true
    (List.exists
       (fun (v : P.violation) ->
         let has sub s =
           let n = String.length sub and m = String.length s in
           let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         has "alloc_loop" v.v_msg)
       r.violations)

(* ---- property: stable under alpha-renaming and let-flattening ----- *)

(* Mechanical alpha-renaming: a fixed map over names that occur only
   as parameters/locals in the core sources (never as unit names), so
   the qualified classification keys are unchanged. Applied to both
   binding patterns and identifier uses. *)
let rename_map =
  [
    ("tid", "tid_alpha");
    ("sp", "sp_alpha");
    ("node", "node_alpha");
    ("from", "from_alpha");
    ("rounds", "rounds_alpha");
    ("waits", "waits_alpha");
  ]

let renamed n = try Some (List.assoc n rename_map) with Not_found -> None

let alpha_mapper =
  let open Parsetree in
  {
    Ast_mapper.default_mapper with
    pat =
      (fun self p ->
        let p = Ast_mapper.default_mapper.pat self p in
        match p.ppat_desc with
        | Ppat_var ({ txt; _ } as v) -> (
            match renamed txt with
            | Some t -> { p with ppat_desc = Ppat_var { v with txt = t } }
            | None -> p)
        | _ -> p);
    expr =
      (fun self e ->
        let e = Ast_mapper.default_mapper.expr self e in
        match e.pexp_desc with
        | Pexp_ident ({ txt = Longident.Lident n; _ } as id) -> (
            match renamed n with
            | Some t ->
                {
                  e with
                  pexp_desc = Pexp_ident { id with txt = Longident.Lident t };
                }
            | None -> e)
        | _ -> e);
  }

(* Mechanical let-flattening: hoist [let x = (let y = a in b) in c] to
   [let y = a in let x = b in c] when the hoist cannot capture (no
   name bound by the inner let is free in [c]). *)
let bound_names vbs =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } -> out := txt :: !out
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  List.iter (fun vb -> it.pat it vb.Parsetree.pvb_pat) vbs;
  !out

let mentions_any names e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self x ->
          (match x.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt = Longident.Lident n; _ }
            when List.mem n names ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self x);
    }
  in
  it.expr it e;
  !found

let flatten_mapper =
  let open Parsetree in
  let open Asttypes in
  {
    Ast_mapper.default_mapper with
    expr =
      (fun self e ->
        let e = Ast_mapper.default_mapper.expr self e in
        match e.pexp_desc with
        | Pexp_let
            ( Nonrecursive,
              [ ({ pvb_attributes = []; _ } as vb) ],
              body )
          when match vb.pvb_expr.pexp_desc with
               | Pexp_let (Nonrecursive, ivbs, _) ->
                   not (mentions_any (bound_names ivbs) body)
               | _ -> false -> (
            match vb.pvb_expr.pexp_desc with
            | Pexp_let (Nonrecursive, ivbs, ibody) ->
                {
                  e with
                  pexp_desc =
                    Pexp_let
                      ( Nonrecursive,
                        ivbs,
                        {
                          e with
                          pexp_desc =
                            Pexp_let
                              ( Nonrecursive,
                                [ { vb with pvb_expr = ibody } ],
                                body );
                        } );
                }
            | _ -> e)
        | _ -> e);
  }

let parse_string ~filename src =
  let lb = Lexing.from_string src in
  Lexing.set_filename lb filename;
  Parse.implementation lb

let key_of (c : P.cls) = (c.c_func, c.c_kind, P.level_name c.c_level)

let classify_file file =
  let r = P.analyze ~roots:[ file ] in
  List.sort compare (List.map key_of r.classifications)

let test_stable_under_transform () =
  with_lib @@ fun lib ->
  let src_file = Filename.concat lib "core/gc.ml" in
  let baseline = classify_file src_file in
  Alcotest.(check bool) "baseline nonempty" true (baseline <> []);
  let str = parse_string ~filename:"gc.ml" (read_file src_file) in
  let transformed =
    let s = alpha_mapper.structure alpha_mapper str in
    flatten_mapper.structure flatten_mapper s
  in
  let printed = Format.asprintf "%a" Pprintast.structure transformed in
  in_temp_copy printed @@ fun file ->
  let got = classify_file file in
  Alcotest.(check (list (triple string string string)))
    "classification stable under alpha-rename + let-flatten" baseline got

let suite =
  [
    Alcotest.test_case "tree has zero progress violations" `Quick
      test_tree_clean;
    Alcotest.test_case "every core cycle is bounded or helping" `Quick
      test_core_is_bounded_or_helping;
    Alcotest.test_case "alloc loop is helping-bounded" `Quick
      test_alloc_loop_is_helping;
    Alcotest.test_case "expect_unbounded assertions hold" `Quick
      test_expectations_hold;
    Alcotest.test_case "seeded helping mutation flips red" `Quick
      test_mutation_flips_red;
    Alcotest.test_case "stable under alpha-rename + let-flatten" `Quick
      test_stable_under_transform;
  ]
