(* Treiber stack: model-based sequential tests (per scheme),
   property-based differential testing against the list model,
   concurrent conservation, and deterministic-scheduler sweeps. *)

open Helpers
module Stack = Structures.Stack
module Model = Structures.Seqmodels.Stack_model
module Mm = Mm_intf
module Value = Shmem.Value

let mk scheme ?(threads = 2) ?(capacity = 64) () =
  let cfg = small_cfg ~threads ~capacity ~num_roots:1 () in
  let mm = mm_of scheme cfg in
  (mm, Stack.create mm ~root:0)

let seq_tests scheme =
  let pre name = Printf.sprintf "%s: %s" scheme name in
  [
    tc (pre "LIFO order") (fun () ->
        let mm, s = mk scheme () in
        List.iter (Stack.push s ~tid:0) [ 1; 2; 3 ];
        check_bool "pop 3" true (Stack.pop s ~tid:0 = Some 3);
        check_bool "pop 2" true (Stack.pop s ~tid:0 = Some 2);
        Stack.push s ~tid:0 9;
        check_bool "pop 9" true (Stack.pop s ~tid:0 = Some 9);
        check_bool "pop 1" true (Stack.pop s ~tid:0 = Some 1);
        check_bool "empty" true (Stack.pop s ~tid:0 = None);
        ignore mm);
    tc (pre "empty stack behaves") (fun () ->
        let mm, s = mk scheme () in
        check_bool "pop empty" true (Stack.pop s ~tid:0 = None);
        check_bool "is_empty" true (Stack.is_empty s ~tid:0);
        Stack.push s ~tid:0 5;
        check_bool "not empty" false (Stack.is_empty s ~tid:0);
        ignore (Stack.pop s ~tid:0);
        ignore mm);
    tc (pre "push/pop cycles recycle memory") (fun () ->
        let mm, s = mk scheme ~capacity:8 () in
        for round = 1 to 50 do
          for i = 1 to 6 do
            Stack.push s ~tid:0 (round + i)
          done;
          for _ = 1 to 6 do
            ignore (Stack.pop s ~tid:0)
          done
        done;
        check_bool "drained" true (Stack.drain s ~tid:0 = []);
        (* flush deferred reclamation for retire-based schemes *)
        for _ = 1 to 100 do
          Mm.enter_op mm ~tid:0;
          Mm.exit_op mm ~tid:0
        done;
        assert_all_free mm);
    qc ~count:100
      (pre "differential vs list model")
      QCheck.(list_of_size (Gen.int_range 0 80) (option (int_range 0 100)))
      (fun script ->
        let mm, s = mk scheme ~capacity:256 () in
        let m = Model.create () in
        let ok =
          List.for_all
            (fun op ->
              match op with
              | Some v ->
                  Stack.push s ~tid:0 v;
                  Model.push m v;
                  true
              | None -> Stack.pop s ~tid:0 = Model.pop m)
            script
        in
        ignore mm;
        ok && Stack.drain s ~tid:0 = Model.to_list m);
  ]

let conc_tests scheme =
  let pre name = Printf.sprintf "%s: %s" scheme name in
  [
    tc (pre "concurrent conservation of values") (fun () ->
        let threads = 4 in
        let mm, s = mk scheme ~threads ~capacity:128 () in
        let pushed = Array.init threads (fun _ -> ref []) in
        let popped = Array.init threads (fun _ -> ref []) in
        ignore
          (Harness.Runner.run ~threads (fun ~tid ->
               let rng = Sched.Rng.create (tid * 11) in
               for i = 1 to 1_500 do
                 if Sched.Rng.bool rng then begin
                   let v = (tid * 1_000_000) + i in
                   try
                     Stack.push s ~tid v;
                     pushed.(tid) := v :: !(pushed.(tid))
                   with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ()
                 end
                 else
                   match Stack.pop s ~tid with
                   | Some v -> popped.(tid) := v :: !(popped.(tid))
                   | None -> ()
               done));
        let rest = Stack.drain s ~tid:0 in
        let all_pushed =
          List.concat_map (fun r -> !r) (Array.to_list pushed)
        in
        let all_popped =
          rest @ List.concat_map (fun r -> !r) (Array.to_list popped)
        in
        check_int "len conserved" (List.length all_pushed)
          (List.length all_popped);
        check_bool "multiset conserved" true
          (List.sort compare all_pushed = List.sort compare all_popped);
        for _ = 1 to 100 do
          Mm.enter_op mm ~tid:0;
          Mm.exit_op mm ~tid:0
        done;
        assert_all_free mm);
    tc (pre "no value duplicated or invented") (fun () ->
        let threads = 2 in
        let mm, s = mk scheme ~threads ~capacity:32 () in
        let produced = Atomic.make 0 in
        let seen = Hashtbl.create 64 in
        let dupes = Atomic.make 0 in
        ignore
          (Harness.Runner.run ~threads (fun ~tid ->
               if tid = 0 then
                 for i = 1 to 2_000 do
                   (try
                      Stack.push s ~tid i;
                      Atomic.incr produced
                    with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ());
                   ignore (Stack.pop s ~tid)
                 done
               else
                 for _ = 1 to 2_000 do
                   match Stack.pop s ~tid with
                   | Some v ->
                       if Hashtbl.mem seen v then Atomic.incr dupes
                       else Hashtbl.replace seen v ()
                   | None -> ()
                 done));
        ignore mm;
        check_int "no duplicates" 0 (Atomic.get dupes));
  ]

let sim_tests =
  [
    tc "wfrc stack: deterministic sweep preserves LIFO + memory" (fun () ->
        sweep_ok ~runs:200 ~threads:2 (fun () ->
            let mm, s = mk "wfrc" ~capacity:16 () in
            let results = Array.make 2 [] in
            let body tid =
              Stack.push s ~tid (10 + tid);
              (match Stack.pop s ~tid with
              | Some v -> results.(tid) <- v :: results.(tid)
              | None -> failwith "pop lost a value");
              ()
            in
            let check () =
              let rest = Stack.drain s ~tid:0 in
              let got =
                List.sort compare
                  (rest @ results.(0) @ results.(1))
              in
              if got <> [ 10; 11 ] then failwith "values not conserved";
              Mm.validate mm;
              if Mm.free_count mm <> 16 then failwith "leak"
            in
            (body, check)));
    tc "lfrc stack: deterministic sweep" (fun () ->
        sweep_ok ~runs:150 ~threads:2 (fun () ->
            let mm, s = mk "lfrc" ~capacity:16 () in
            let body tid =
              Stack.push s ~tid tid;
              ignore (Stack.pop s ~tid)
            in
            let check () =
              ignore (Stack.drain s ~tid:0);
              Mm.validate mm;
              if Mm.free_count mm <> 16 then failwith "leak"
            in
            (body, check)));
  ]

let suite =
  List.concat_map seq_tests all_schemes
  @ List.concat_map conc_tests [ "wfrc"; "lfrc"; "hp"; "ebr" ]
  @ sim_tests
