(* Michael–Scott queue: FIFO model tests per scheme, property-based
   differential testing, per-producer order preservation under
   concurrency, and deterministic sweeps. *)

open Helpers
module Queue_ = Structures.Queue
module Model = Structures.Seqmodels.Queue_model
module Mm = Mm_intf

let mk scheme ?(threads = 2) ?(capacity = 64) () =
  let cfg = small_cfg ~threads ~capacity ~num_roots:2 () in
  let mm = mm_of scheme cfg in
  (mm, Queue_.create mm ~head_root:0 ~tail_root:1 ~tid:0)

let seq_tests scheme =
  let pre name = Printf.sprintf "%s: %s" scheme name in
  [
    tc (pre "FIFO order") (fun () ->
        let mm, q = mk scheme () in
        List.iter (Queue_.enqueue q ~tid:0) [ 1; 2; 3 ];
        check_bool "deq 1" true (Queue_.dequeue q ~tid:0 = Some 1);
        Queue_.enqueue q ~tid:0 4;
        check_bool "deq 2" true (Queue_.dequeue q ~tid:0 = Some 2);
        check_bool "deq 3" true (Queue_.dequeue q ~tid:0 = Some 3);
        check_bool "deq 4" true (Queue_.dequeue q ~tid:0 = Some 4);
        check_bool "empty" true (Queue_.dequeue q ~tid:0 = None);
        ignore mm);
    tc (pre "empty queue behaves") (fun () ->
        let mm, q = mk scheme () in
        check_bool "deq empty" true (Queue_.dequeue q ~tid:0 = None);
        check_bool "is_empty" true (Queue_.is_empty q ~tid:0);
        Queue_.enqueue q ~tid:0 1;
        check_bool "not empty" false (Queue_.is_empty q ~tid:0);
        ignore (Queue_.dequeue q ~tid:0);
        check_bool "empty again" true (Queue_.is_empty q ~tid:0);
        ignore mm);
    tc (pre "sentinel accounting: one node held when empty") (fun () ->
        let mm, q = mk scheme ~capacity:8 () in
        for i = 1 to 30 do
          Queue_.enqueue q ~tid:0 i;
          ignore (Queue_.dequeue q ~tid:0)
        done;
        for _ = 1 to 100 do
          Mm.enter_op mm ~tid:0;
          Mm.exit_op mm ~tid:0
        done;
        assert_all_free ~reserved:1 mm);
    qc ~count:100
      (pre "differential vs two-list model")
      QCheck.(list_of_size (Gen.int_range 0 80) (option (int_range 0 100)))
      (fun script ->
        let mm, q = mk scheme ~capacity:256 () in
        let m = Model.create () in
        let ok =
          List.for_all
            (fun op ->
              match op with
              | Some v ->
                  Queue_.enqueue q ~tid:0 v;
                  Model.push m v;
                  true
              | None -> Queue_.dequeue q ~tid:0 = Model.pop m)
            script
        in
        ignore mm;
        ok && Queue_.drain q ~tid:0 = Model.to_list m);
  ]

let conc_tests scheme =
  let pre name = Printf.sprintf "%s: %s" scheme name in
  [
    tc (pre "concurrent conservation") (fun () ->
        let threads = 4 in
        let mm, q = mk scheme ~threads ~capacity:128 () in
        let enq = Array.init threads (fun _ -> ref []) in
        let deq = Array.init threads (fun _ -> ref []) in
        ignore
          (Harness.Runner.run ~threads (fun ~tid ->
               let rng = Sched.Rng.create (tid * 13) in
               for i = 1 to 1_500 do
                 if Sched.Rng.bool rng then begin
                   let v = (tid * 1_000_000) + i in
                   try
                     Queue_.enqueue q ~tid v;
                     enq.(tid) := v :: !(enq.(tid))
                   with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ()
                 end
                 else
                   match Queue_.dequeue q ~tid with
                   | Some v -> deq.(tid) := v :: !(deq.(tid))
                   | None -> ()
               done));
        let rest = Queue_.drain q ~tid:0 in
        let all_enq = List.concat_map (fun r -> !r) (Array.to_list enq) in
        let all_deq =
          rest @ List.concat_map (fun r -> !r) (Array.to_list deq)
        in
        check_bool "multiset conserved" true
          (List.sort compare all_enq = List.sort compare all_deq);
        for _ = 1 to 100 do
          Mm.enter_op mm ~tid:0;
          Mm.exit_op mm ~tid:0
        done;
        assert_all_free ~reserved:1 mm);
    tc (pre "per-producer FIFO preserved under concurrency") (fun () ->
        (* values of one producer must be dequeued in their enqueue
           order, whatever interleaving happens *)
        let threads = 3 in
        let mm, q = mk scheme ~threads ~capacity:128 () in
        let out = ref [] in
        ignore
          (Harness.Runner.run ~threads (fun ~tid ->
               if tid < 2 then
                 for i = 1 to 1_000 do
                   try Queue_.enqueue q ~tid ((tid * 1_000_000) + i)
                   with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ()
                 done
               else begin
                 let n = ref 0 in
                 let idle = ref 0 in
                 while !n < 2_000 && !idle < 2_000_000 do
                   match Queue_.dequeue q ~tid with
                   | Some v ->
                       out := v :: !out;
                       incr n;
                       idle := 0
                   | None ->
                       incr idle;
                       Domain.cpu_relax ()
                 done
               end));
        let consumed = List.rev !out @ Queue_.drain q ~tid:0 in
        let producer p =
          List.filter (fun v -> v / 1_000_000 = p) consumed
        in
        let is_sorted l = List.sort compare l = l in
        check_bool "producer 0 order kept" true (is_sorted (producer 0));
        check_bool "producer 1 order kept" true (is_sorted (producer 1));
        ignore mm);
  ]

let sim_tests =
  [
    tc "wfrc queue: deterministic sweep conserves values + memory"
      (fun () ->
        sweep_ok ~runs:200 ~threads:2 (fun () ->
            let mm, q = mk "wfrc" ~capacity:16 () in
            let got = Array.make 2 [] in
            let body tid =
              Queue_.enqueue q ~tid (100 + tid);
              match Queue_.dequeue q ~tid with
              | Some v -> got.(tid) <- v :: got.(tid)
              | None -> failwith "dequeue lost a value"
            in
            let check () =
              let rest = Queue_.drain q ~tid:0 in
              let all = List.sort compare (rest @ got.(0) @ got.(1)) in
              if all <> [ 100; 101 ] then failwith "values not conserved";
              Mm.validate mm;
              if Mm.free_count mm <> 15 then failwith "leak"
            in
            (body, check)));
    tc "wfrc queue: enq/enq then FIFO drain (exhaustive-ish)" (fun () ->
        sweep_ok ~runs:200 ~threads:2 (fun () ->
            let mm, q = mk "wfrc" ~capacity:16 () in
            let body tid = Queue_.enqueue q ~tid tid in
            let check () =
              let rest = Queue_.drain q ~tid:0 in
              if List.sort compare rest <> [ 0; 1 ] then
                failwith "lost enqueue";
              Mm.validate mm;
              if Mm.free_count mm <> 15 then failwith "leak"
            in
            (body, check)));
  ]

let suite =
  List.concat_map seq_tests all_schemes
  @ List.concat_map conc_tests [ "wfrc"; "lfrc"; "hp"; "ebr" ]
  @ sim_tests
