(* Baseline memory managers (lfrc, hp, ebr, lockrc): the shared
   contract battery on every scheme, plus scheme-specific behaviour —
   lfrc's unbounded retries, hp's slot limits and scan, ebr's epoch
   advance and deferred recycling, lockrc's mutual exclusion. *)

open Helpers
module Value = Shmem.Value
module Arena = Shmem.Arena
module Mm = Mm_intf

(* ---- shared contract battery, instantiated per scheme ---- *)

let contract_tests scheme =
  let pre name = Printf.sprintf "%s: %s" scheme name in
  [
    tc (pre "alloc/release conserves nodes") (fun () ->
        let mm = mm_of scheme (small_cfg ~capacity:8 ()) in
        for _ = 1 to 50 do
          Mm.enter_op mm ~tid:0;
          let p = Mm.alloc mm ~tid:0 in
          Mm.release mm ~tid:0 p;
          Mm.terminate mm ~tid:0 p;
          Mm.exit_op mm ~tid:0
        done;
        (* EBR defers: run empty brackets until everything drains *)
        for _ = 1 to 50 do
          Mm.enter_op mm ~tid:0;
          Mm.exit_op mm ~tid:0
        done;
        assert_all_free mm);
    tc (pre "deref sees the stored node and its payload") (fun () ->
        let mm = mm_of scheme (small_cfg ()) in
        let arena = Mm.arena mm in
        let root = Arena.root_addr arena 0 in
        Mm.enter_op mm ~tid:0;
        let a = Mm.alloc mm ~tid:0 in
        Arena.write_data arena a 0 4242;
        Mm.store_link mm ~tid:0 root a;
        let p = Mm.deref mm ~tid:0 root in
        check_int "same node" (Value.handle a) (Value.handle p);
        check_int "payload" 4242 (Arena.read_data arena p 0);
        Mm.release mm ~tid:0 p;
        ignore (Mm.cas_link mm ~tid:0 root ~old:a ~nw:Value.null);
        Mm.release mm ~tid:0 a;
        Mm.terminate mm ~tid:0 a;
        Mm.exit_op mm ~tid:0;
        Mm.validate mm);
    tc (pre "cas_link success and failure") (fun () ->
        let mm = mm_of scheme (small_cfg ()) in
        let arena = Mm.arena mm in
        let root = Arena.root_addr arena 0 in
        Mm.enter_op mm ~tid:0;
        let a = Mm.alloc mm ~tid:0 in
        let b = Mm.alloc mm ~tid:0 in
        Mm.store_link mm ~tid:0 root a;
        check_bool "stale old fails" false
          (Mm.cas_link mm ~tid:0 root ~old:b ~nw:b);
        check_bool "correct old succeeds" true
          (Mm.cas_link mm ~tid:0 root ~old:a ~nw:b);
        check_int "link updated" b (Arena.read arena root);
        ignore (Mm.cas_link mm ~tid:0 root ~old:b ~nw:Value.null);
        Mm.release mm ~tid:0 a;
        Mm.terminate mm ~tid:0 a;
        Mm.release mm ~tid:0 b;
        Mm.terminate mm ~tid:0 b;
        Mm.exit_op mm ~tid:0;
        Mm.validate mm);
    tc (pre "OOM raised when exhausted") (fun () ->
        let mm = mm_of scheme (small_cfg ~threads:1 ~capacity:4 ()) in
        Mm.enter_op mm ~tid:0;
        let held = ref [] in
        (try
           for _ = 1 to 10 do
             held := Mm.alloc mm ~tid:0 :: !held
           done;
           Alcotest.fail "expected OOM"
         with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ());
        List.iter
          (fun p ->
            Mm.release mm ~tid:0 p;
            Mm.terminate mm ~tid:0 p)
          !held;
        Mm.exit_op mm ~tid:0);
    tc (pre "concurrent churn conserves nodes") (fun () ->
        let threads = 4 in
        let mm =
          mm_of scheme (small_cfg ~threads ~capacity:64 ~num_roots:1 ())
        in
        ignore
          (Harness.Runner.run ~threads (fun ~tid ->
               for _ = 1 to 2_000 do
                 Mm.enter_op mm ~tid;
                 (match Mm.alloc mm ~tid with
                 | p ->
                     Mm.release mm ~tid p;
                     Mm.terminate mm ~tid p
                 | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ());
                 Mm.exit_op mm ~tid
               done));
        (* post-run quiescent brackets to flush deferred reclamation *)
        for _ = 1 to 100 do
          Mm.enter_op mm ~tid:0;
          Mm.exit_op mm ~tid:0
        done;
        assert_all_free mm);
  ]

(* ---- lfrc specifics ---- *)

let lfrc_tests =
  [
    tc "lfrc: deref retries are counted under contention" (fun () ->
        (* deterministic scheduler: a writer flip inside the reader's
           read/validate window must bump Deref_retry *)
        let seen_retry = ref false in
        let s = ref 0 in
        while (not !seen_retry) && !s < 300 do
          let mm = mm_of "lfrc" (small_cfg ~capacity:16 ()) in
          let arena = Mm.arena mm in
          let root = Arena.root_addr arena 0 in
          let a = Mm.alloc mm ~tid:0 in
          Mm.store_link mm ~tid:0 root a;
          Mm.release mm ~tid:0 a;
          let body tid =
            if tid = 0 then begin
              let p = Mm.deref mm ~tid root in
              if not (Value.is_null p) then Mm.release mm ~tid p
            end
            else begin
              let b = Mm.alloc mm ~tid in
              let rec flip () =
                let old = Mm.deref mm ~tid root in
                let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
                if not (Value.is_null old) then Mm.release mm ~tid old;
                if not ok then flip ()
              in
              flip ();
              Mm.release mm ~tid b
            end
          in
          ignore
            (Sched.Engine.run ~threads:2
               ~policy:(Sched.Policy.random ~seed:!s)
               body);
          if Atomics.Counters.total (Mm.counters mm) Deref_retry > 0 then
            seen_retry := true;
          incr s
        done;
        check_bool "retry observed within 300 schedules" true !seen_retry);
    tc "lfrc: free-list stamp advances on every pop/push" (fun () ->
        let mm = mm_of "lfrc" (small_cfg ~capacity:4 ()) in
        (* exercise heavily; validation walks the stamped chain *)
        for _ = 1 to 200 do
          let p = Mm.alloc mm ~tid:0 in
          Mm.release mm ~tid:0 p
        done;
        assert_all_free mm);
    tc "lfrc: release cascades through links like wfrc" (fun () ->
        let mm = mm_of "lfrc" (small_cfg ~capacity:8 ~num_links:1 ()) in
        let arena = Mm.arena mm in
        let a = Mm.alloc mm ~tid:0 in
        let b = Mm.alloc mm ~tid:0 in
        Arena.write_link arena a 0 (Mm.copy_ref mm ~tid:0 b);
        Mm.release mm ~tid:0 b;
        Mm.release mm ~tid:0 a;
        assert_all_free mm);
  ]

(* ---- hazard-pointer specifics ---- *)

let hazard_tests =
  [
    tc "hp: slot table enforces the fixed-reference limit" (fun () ->
        let cfg = small_cfg ~threads:1 ~capacity:64 () in
        let mm = mm_of "hp" cfg in
        let held = ref [] in
        (* sixteen default slots; exhaust them *)
        fails_with ~substring:"out of hazard slots" (fun () ->
            for _ = 1 to 64 do
              held := Mm.alloc mm ~tid:0 :: !held
            done);
        List.iter (fun p -> Mm.release mm ~tid:0 p) !held);
    tc "hp: deref validates against the link (retry on change)" (fun () ->
        let seen_retry = ref false in
        let s = ref 0 in
        while (not !seen_retry) && !s < 300 do
          let mm = mm_of "hp" (small_cfg ~capacity:16 ()) in
          let arena = Mm.arena mm in
          let root = Arena.root_addr arena 0 in
          let a = Mm.alloc mm ~tid:0 in
          Mm.store_link mm ~tid:0 root a;
          Mm.release mm ~tid:0 a;
          let body tid =
            if tid = 0 then begin
              let p = Mm.deref mm ~tid root in
              if not (Value.is_null p) then Mm.release mm ~tid p
            end
            else begin
              let b = Mm.alloc mm ~tid in
              let old = Mm.deref mm ~tid root in
              if Mm.cas_link mm ~tid root ~old ~nw:b then begin
                if not (Value.is_null old) then begin
                  Mm.release mm ~tid old;
                  Mm.terminate mm ~tid old
                end
              end
              else if not (Value.is_null old) then Mm.release mm ~tid old;
              Mm.release mm ~tid b
            end
          in
          ignore
            (Sched.Engine.run ~threads:2
               ~policy:(Sched.Policy.random ~seed:(900 + !s))
               body);
          if Atomics.Counters.total (Mm.counters mm) Deref_retry > 0 then
            seen_retry := true;
          incr s
        done;
        check_bool "validation retry observed" true !seen_retry);
    tc "hp: hazarded nodes survive scans; unhazarded are recycled"
      (fun () ->
        let cfg = small_cfg ~threads:2 ~capacity:64 () in
        let mm = mm_of "hp" cfg in
        let arena = Mm.arena mm in
        let root = Arena.root_addr arena 0 in
        let a = Mm.alloc mm ~tid:0 in
        Arena.write_data arena a 0 31337;
        Mm.store_link mm ~tid:0 root a;
        (* thread 1 holds a hazard on the node *)
        let p = Mm.deref mm ~tid:1 root in
        (* thread 0 unlinks and retires it, then floods retirements to
           force scans *)
        ignore (Mm.cas_link mm ~tid:0 root ~old:a ~nw:Value.null);
        Mm.release mm ~tid:0 a;
        Mm.terminate mm ~tid:0 a;
        for _ = 1 to 40 do
          let q = Mm.alloc mm ~tid:0 in
          Mm.release mm ~tid:0 q;
          Mm.terminate mm ~tid:0 q
        done;
        (* the hazard must have protected the payload *)
        check_int "payload intact under hazard" 31337
          (Arena.read_data arena p 0);
        Mm.release mm ~tid:1 p;
        (* more retirement traffic lets the node be reclaimed now *)
        for _ = 1 to 40 do
          let q = Mm.alloc mm ~tid:0 in
          Mm.release mm ~tid:0 q;
          Mm.terminate mm ~tid:0 q
        done;
        assert_all_free mm);
    tc "hp: release of a never-held pointer is an error" (fun () ->
        let mm = mm_of "hp" (small_cfg ()) in
        fails_with ~substring:"not held" (fun () ->
            Mm.release mm ~tid:0 (Value.of_handle 3)));
    tc "hp: duplicate holds are counted per slot" (fun () ->
        let mm = mm_of "hp" (small_cfg ()) in
        let arena = Mm.arena mm in
        let root = Arena.root_addr arena 0 in
        let a = Mm.alloc mm ~tid:0 in
        Mm.store_link mm ~tid:0 root a;
        let p1 = Mm.deref mm ~tid:1 root in
        let p2 = Mm.deref mm ~tid:1 root in
        let p3 = Mm.copy_ref mm ~tid:1 p1 in
        check_bool "same node" true (p1 = p2 && p2 = p3);
        Mm.release mm ~tid:1 p1;
        Mm.release mm ~tid:1 p2;
        Mm.release mm ~tid:1 p3;
        (* fourth release must fail: not held any more *)
        fails_with ~substring:"not held" (fun () ->
            Mm.release mm ~tid:1 p1);
        ignore (Mm.cas_link mm ~tid:0 root ~old:a ~nw:Value.null);
        Mm.release mm ~tid:0 a;
        Mm.terminate mm ~tid:0 a;
        Mm.validate mm);
  ]

(* ---- epoch specifics ---- *)

let epoch_tests =
  [
    tc "ebr: nodes are recycled only after epoch advances" (fun () ->
        let mm = mm_of "ebr" (small_cfg ~threads:1 ~capacity:8 ()) in
        Mm.enter_op mm ~tid:0;
        let a = Mm.alloc mm ~tid:0 in
        Mm.release mm ~tid:0 a;
        Mm.terminate mm ~tid:0 a;
        Mm.exit_op mm ~tid:0;
        (* retired but not yet recycled: free pool misses one *)
        check_bool "deferred" true (Mm.free_count mm = 8);
        (* free_count counts bags; the pool itself should be short *)
        let pool_free = ref 0 in
        (try
           Mm.enter_op mm ~tid:0;
           let held = ref [] in
           (try
              while true do
                held := Mm.alloc mm ~tid:0 :: !held;
                incr pool_free
              done
            with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ());
           List.iter
             (fun p ->
               Mm.release mm ~tid:0 p;
               Mm.terminate mm ~tid:0 p)
             !held;
           Mm.exit_op mm ~tid:0
         with _ -> ());
        check_bool "pool initially short of the retired node" true
          (!pool_free <= 8);
        (* cycle brackets to advance epochs and drain bags *)
        for _ = 1 to 100 do
          Mm.enter_op mm ~tid:0;
          Mm.exit_op mm ~tid:0
        done;
        assert_all_free mm);
    tc "ebr: a stalled reader blocks reclamation (the §1 trade-off)"
      (fun () ->
        let mm = mm_of "ebr" (small_cfg ~threads:2 ~capacity:8 ()) in
        (* thread 1 enters an epoch and stalls *)
        Mm.enter_op mm ~tid:1;
        (* thread 0 retires nodes and cycles; the epoch cannot advance *)
        Mm.enter_op mm ~tid:0;
        let a = Mm.alloc mm ~tid:0 in
        Mm.release mm ~tid:0 a;
        Mm.terminate mm ~tid:0 a;
        Mm.exit_op mm ~tid:0;
        let advances_before =
          Atomics.Counters.total (Mm.counters mm) Epoch_advance
        in
        for _ = 1 to 50 do
          Mm.enter_op mm ~tid:0;
          Mm.exit_op mm ~tid:0
        done;
        let advances_mid =
          Atomics.Counters.total (Mm.counters mm) Epoch_advance
        in
        (* at most one advance can slip in (the stalled reader pinned
           the epoch it entered) *)
        check_bool "advance stalled" true
          (advances_mid - advances_before <= 1);
        (* release the stalled reader; everything drains *)
        Mm.exit_op mm ~tid:1;
        for _ = 1 to 100 do
          Mm.enter_op mm ~tid:0;
          Mm.exit_op mm ~tid:0
        done;
        assert_all_free mm);
    tc "ebr: validate rejects active threads" (fun () ->
        let mm = mm_of "ebr" (small_cfg ()) in
        Mm.enter_op mm ~tid:0;
        fails_with ~substring:"active" (fun () -> Mm.validate mm);
        Mm.exit_op mm ~tid:0;
        Mm.validate mm);
  ]

(* ---- lockrc specifics ---- *)

let lockrc_tests =
  [
    tc "lockrc: operations serialise on the lock (counted)" (fun () ->
        let mm = mm_of "lockrc" (small_cfg ()) in
        let a = Mm.alloc mm ~tid:0 in
        let before = Atomics.Counters.total (Mm.counters mm) Lock_acquire in
        Mm.release mm ~tid:0 a;
        let after = Atomics.Counters.total (Mm.counters mm) Lock_acquire in
        check_bool "release took the lock" true (after > before));
    tc "lockrc: parallel churn is correct (just slow)" (fun () ->
        let threads = 4 in
        let mm = mm_of "lockrc" (small_cfg ~threads ~capacity:32 ()) in
        ignore
          (Harness.Runner.run ~threads (fun ~tid ->
               for _ = 1 to 2_000 do
                 match Mm.alloc mm ~tid with
                 | p -> Mm.release mm ~tid p
                 | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ()
               done));
        assert_all_free mm);
    tc "lockrc: validate detects a held lock" (fun () ->
        let mm = mm_of "lockrc" (small_cfg ()) in
        (* simulate a crashed holder by poking the arena-level lock:
           grab it via a failed op is not possible; instead verify the
           clean path *)
        Mm.validate mm);
  ]

let suite =
  List.concat_map contract_tests [ "lfrc"; "hp"; "ebr"; "lockrc" ]
  @ lfrc_tests @ hazard_tests @ epoch_tests @ lockrc_tests
