(* Harness components: histogram statistics, table rendering, workload
   generation, the runner and the registry. *)

open Helpers
module Hist = Harness.Metrics.Hist

let hist_tests =
  [
    tc "empty histogram" (fun () ->
        let h = Hist.create () in
        check_int "count" 0 (Hist.count h);
        check_int "max" 0 (Hist.max_value h);
        check_int "p99" 0 (Hist.percentile h 0.99);
        check_bool "mean" true (Hist.mean h = 0.0));
    tc "single value" (fun () ->
        let h = Hist.create () in
        Hist.add h 500;
        check_int "count" 1 (Hist.count h);
        check_int "min" 500 (Hist.min_value h);
        check_int "max" 500 (Hist.max_value h);
        check_bool "mean" true (Hist.mean h = 500.0);
        check_int "p50 = the value" 500 (Hist.percentile h 0.5));
    tc "percentiles are monotone and bounded by max" (fun () ->
        let h = Hist.create () in
        for i = 1 to 10_000 do
          Hist.add h i
        done;
        let p50 = Hist.percentile h 0.5 in
        let p90 = Hist.percentile h 0.9 in
        let p999 = Hist.percentile h 0.999 in
        check_bool "monotone" true (p50 <= p90 && p90 <= p999);
        check_bool "bounded" true (p999 <= Hist.max_value h);
        (* log-bucket error is bounded by one sub-bucket (~6%) *)
        check_bool "p50 near 5000" true (p50 >= 5_000 && p50 <= 5_700);
        check_bool "p90 near 9000" true (p90 >= 9_000 && p90 <= 10_000));
    tc "merge_into combines counts and extremes" (fun () ->
        let a = Hist.create () and b = Hist.create () in
        Hist.add a 10;
        Hist.add b 1_000_000;
        Hist.merge_into a b;
        check_int "count" 2 (Hist.count a);
        check_int "min" 10 (Hist.min_value a);
        check_int "max" 1_000_000 (Hist.max_value a));
    tc "negative samples are tallied, not folded in" (fun () ->
        (* A negative duration is a measurement bug; the old behaviour
           clamped it to 0, silently polluting the distribution. *)
        let h = Hist.create () in
        Hist.add h (-5);
        check_int "not counted" 0 (Hist.count h);
        check_int "tallied" 1 (Hist.negatives h);
        Hist.add h 10;
        Hist.add h (-1);
        check_int "count sees only the real sample" 1 (Hist.count h);
        check_int "negatives accumulate" 2 (Hist.negatives h);
        check_int "min untouched by negatives" 10 (Hist.min_value h);
        check_bool "mean untouched by negatives" true (Hist.mean h = 10.0));
    tc "merge_into carries negatives across" (fun () ->
        let a = Hist.create () and b = Hist.create () in
        Hist.add a (-3);
        Hist.add b (-4);
        Hist.add b 7;
        Hist.merge_into a b;
        check_int "negatives merged" 2 (Hist.negatives a);
        check_int "count merged" 1 (Hist.count a));
    qc "max is exact, percentile(1.0) equals it"
      QCheck.(list_of_size (Gen.int_range 1 200) (int_range 0 1_000_000))
      (fun vs ->
        let h = Hist.create () in
        List.iter (Hist.add h) vs;
        Hist.max_value h = List.fold_left max 0 vs
        && Hist.percentile h 1.0 = Hist.max_value h);
    qc "mean matches a direct computation"
      QCheck.(list_of_size (Gen.int_range 1 100) (int_range 0 100_000))
      (fun vs ->
        let h = Hist.create () in
        List.iter (Hist.add h) vs;
        let direct =
          float_of_int (List.fold_left ( + ) 0 vs)
          /. float_of_int (List.length vs)
        in
        abs_float (Hist.mean h -. direct) < 0.001);
  ]

let fmt_tests =
  [
    tc "duration formatting" (fun () ->
        check_string "ns" "999ns" (Harness.Metrics.ns_to_string 999);
        check_string "us" "1.5us" (Harness.Metrics.ns_to_string 1_500);
        check_string "ms" "2.0ms" (Harness.Metrics.ns_to_string 2_000_000);
        check_string "s" "3.00s" (Harness.Metrics.ns_to_string 3_000_000_000));
    tc "ops formatting" (fun () ->
        check_string "M" "2.50M" (Harness.Metrics.ops_to_string 2.5e6);
        check_string "k" "3.2k" (Harness.Metrics.ops_to_string 3_200.0);
        check_string "plain" "42" (Harness.Metrics.ops_to_string 42.0));
  ]

let table_tests =
  [
    tc "render aligns columns" (fun () ->
        let out =
          Harness.Table.render ~headers:[ "name"; "n" ]
            ~rows:[ [ "alpha"; "1" ]; [ "b"; "10000" ] ]
        in
        let lines = String.split_on_char '\n' out in
        let widths =
          List.filter_map
            (fun l -> if l = "" then None else Some (String.length l))
            lines
        in
        check_bool "all lines same width" true
          (List.for_all (fun w -> w = List.hd widths) widths));
    tc "render rejects ragged rows" (fun () ->
        fails_with (fun () ->
            Harness.Table.render ~headers:[ "a"; "b" ] ~rows:[ [ "1" ] ]));
    tc "csv quotes what needs quoting" (fun () ->
        let out =
          Harness.Table.csv ~headers:[ "x" ] ~rows:[ [ "a,b" ]; [ "c\"d" ] ]
        in
        check_bool "comma quoted" true (contains out "\"a,b\"");
        check_bool "quote doubled" true (contains out "\"c\"\"d\""));
    tc "csv round-trips RFC 4180 specials" (fun () ->
        (* A minimal quote-aware RFC 4180 reader: records split on
           newlines outside quotes, [""] inside a quoted cell is a
           literal quote. *)
        let parse s =
          let records = ref [] and cells = ref [] in
          let cell = Buffer.create 16 in
          let in_quotes = ref false in
          let flush_cell () =
            cells := Buffer.contents cell :: !cells;
            Buffer.clear cell
          in
          let flush_record () =
            flush_cell ();
            records := List.rev !cells :: !records;
            cells := []
          in
          let n = String.length s in
          let i = ref 0 in
          while !i < n do
            let c = s.[!i] in
            (if !in_quotes then
               if c = '"' then
                 if !i + 1 < n && s.[!i + 1] = '"' then begin
                   Buffer.add_char cell '"';
                   incr i
                 end
                 else in_quotes := false
               else Buffer.add_char cell c
             else
               match c with
               | '"' -> in_quotes := true
               | ',' -> flush_cell ()
               | '\n' -> flush_record ()
               | c -> Buffer.add_char cell c);
            incr i
          done;
          if Buffer.length cell > 0 || !cells <> [] then flush_record ();
          List.rev !records
        in
        let headers = [ "plain"; "with,comma" ] in
        let rows =
          [
            [ "a\"quote"; "multi\nline" ];
            [ "carriage\rreturn"; "all,of\"it\r\n" ];
            [ ""; "trailing" ];
          ]
        in
        let parsed = parse (Harness.Table.csv ~headers ~rows) in
        Alcotest.(check (list (list string)))
          "round-trip" (headers :: rows) parsed);
  ]

let workload_tests =
  [
    tc "mixed respects the produce ratio (statistically)" (fun () ->
        let rng = Sched.Rng.create 4 in
        let ops =
          Harness.Workload.mixed ~rng ~n:10_000 ~produce_pct:30 ~key_range:100
        in
        let produces = Harness.Workload.count_produces ops in
        check_bool "close to 30%" true (produces > 2_500 && produces < 3_500));
    tc "mixed keys stay in range" (fun () ->
        let rng = Sched.Rng.create 5 in
        let ops =
          Harness.Workload.mixed ~rng ~n:1_000 ~produce_pct:100 ~key_range:7
        in
        Array.iter
          (function
            | Harness.Workload.Produce k ->
                if k < 0 || k >= 7 then Alcotest.failf "key %d" k
            | Consume -> Alcotest.fail "no consumes expected")
          ops);
    tc "per_thread streams are independent and reproducible" (fun () ->
        let gen rng = Array.init 5 (fun _ -> Sched.Rng.int rng 1000) in
        let a = Harness.Workload.per_thread ~threads:3 ~seed:9 gen in
        let b = Harness.Workload.per_thread ~threads:3 ~seed:9 gen in
        check_bool "reproducible" true (a = b);
        check_bool "distinct across threads" true (a.(0) <> a.(1)));
    tc "per_thread streams are independent across seeds" (fun () ->
        (* The old fixed-stride seeding (seed + tid * 1_000_003) made
           thread 1 of seed s replay thread 0 of seed s + 1_000_003.
           Split-derived streams must not collide for any (seed, tid)
           pair across nearby or stride-related seeds. *)
        let gen rng = Array.init 32 (fun _ -> Sched.Rng.int rng 1_000_000) in
        let base = Harness.Workload.per_thread ~threads:4 ~seed:42 gen in
        List.iter
          (fun seed ->
            let other = Harness.Workload.per_thread ~threads:4 ~seed gen in
            Array.iter
              (fun s ->
                Array.iter
                  (fun o ->
                    check_bool
                      (Printf.sprintf "no stream collision with seed %d" seed)
                      false (s = o))
                  other)
              base)
          [ 43; 42 + 1_000_003; 42 + (2 * 1_000_003); 42 - 1_000_003 ]);
    tc "churn bursts within bounds" (fun () ->
        let rng = Sched.Rng.create 6 in
        let bursts = Harness.Workload.churn_bursts ~rng ~n:500 ~max_burst:8 in
        Array.iter
          (fun b -> if b < 1 || b > 8 then Alcotest.failf "burst %d" b)
          bursts);
  ]

let runner_tests =
  [
    tc "runner executes every tid exactly once" (fun () ->
        let hits = Array.make 4 0 in
        let r = Harness.Runner.run ~threads:4 (fun ~tid -> hits.(tid) <- hits.(tid) + 1) in
        check_bool "all ran once" true (hits = [| 1; 1; 1; 1 |]);
        check_bool "wall time positive" true (r.wall_ns >= 0));
    tc "throughput arithmetic" (fun () ->
        let r = { Harness.Runner.wall_ns = 1_000_000_000; per_thread_ns = [| 0 |] } in
        check_bool "1000 ops in 1s" true
          (abs_float (Harness.Runner.throughput ~ops:1000 r -. 1000.0) < 0.01));
    tc "single-thread runner works" (fun () ->
        let x = ref 0 in
        ignore (Harness.Runner.run ~threads:1 (fun ~tid -> x := tid + 41));
        check_int "ran" 41 !x);
  ]

let config_tests =
  [
    tc "config rejects non-positive sizes" (fun () ->
        fails_with (fun () -> Mm_intf.config ~threads:0 ~capacity:4 ());
        fails_with (fun () -> Mm_intf.config ~threads:2 ~capacity:0 ()));
    tc "config defaults are zero-extras" (fun () ->
        let c = Mm_intf.config ~threads:2 ~capacity:4 () in
        check_int "links" 0 c.num_links;
        check_int "data" 0 c.num_data;
        check_int "roots" 0 c.num_roots);
    tc "instance accessors agree with the config" (fun () ->
        let c = small_cfg ~threads:3 ~capacity:32 () in
        let mm = mm_of "wfrc" c in
        check_int "threads" 3 (Mm_intf.conf mm).threads;
        check_int "capacity" 32 (Shmem.Arena.capacity (Mm_intf.arena mm));
        check_int "counters rows" 3
          (Atomics.Counters.threads (Mm_intf.counters mm)));
    tc "sharding knobs are validated" (fun () ->
        let native = Atomics.Backend.Native in
        fails_with (fun () ->
            Mm_intf.config ~backend:native ~shards:0 ~threads:2 ~capacity:8 ());
        fails_with (fun () ->
            Mm_intf.config ~backend:native ~batch:0 ~threads:2 ~capacity:8 ());
        fails_with (fun () ->
            Mm_intf.config ~backend:native ~shards:16 ~threads:2 ~capacity:8 ());
        (* Sim must never see a sharded store: its schedules are the
           byte-identical baseline. *)
        fails_with ~substring:"Native" (fun () ->
            Mm_intf.config ~shards:2 ~threads:2 ~capacity:8 ());
        fails_with ~substring:"Native" (fun () ->
            Mm_intf.config ~batch:2 ~threads:2 ~capacity:8 ());
        let c =
          Mm_intf.config ~backend:native ~shards:2 ~batch:4 ~threads:2
            ~capacity:8 ()
        in
        check_bool "sharded" true (Mm_intf.sharded c);
        let legacy = Mm_intf.config ~backend:native ~threads:2 ~capacity:8 () in
        check_bool "defaults are legacy" false (Mm_intf.sharded legacy));
  ]

let bench_report_tests =
  [
    tc "bench report surfaces negative timer samples" (fun () ->
        let point neg =
          {
            Harness.Bench.rev = "abcdef0";
            scheme = "wfrc";
            backend = Atomics.Backend.Native;
            rep = Atomics.Backend.Unboxed;
            threads = 1;
            shards = 1;
            batch = 1;
            ops = 100;
            wall_ns = 1_000;
            ops_per_sec = 1.0;
            mean_ns = 1.0;
            p50_ns = 1;
            p90_ns = 1;
            p99_ns = 1;
            max_ns = 1;
            neg_samples = neg;
          }
        in
        let has_warning r =
          List.exists
            (fun n -> contains n "negative timer")
            r.Harness.Report.notes
        in
        check_bool "clean points carry no warning" false
          (has_warning (Harness.Bench.report [ point 0 ]));
        check_bool "negative samples raise a note" true
          (has_warning (Harness.Bench.report [ point 3 ]));
        check_bool "json carries the field" true
          (contains
             (Harness.Bench.to_json
                [ Harness.Bench.json_of_point (point 3) ])
             "\"neg_samples\": 3"));
    tc "bench merge replaces old-format lines missing key fields" (fun () ->
        (* A BENCH file written before the "rep"/"batch" knobs existed:
           its point lines lack those key fields entirely. Re-measuring
           the same configuration must replace such a line (missing
           field = wildcard), not duplicate it forever; points for
           other configurations must still be carried through. *)
        let point =
          {
            Harness.Bench.rev = "abcdef0";
            scheme = "wfrc";
            backend = Atomics.Backend.Native;
            rep = Atomics.Backend.Unboxed;
            threads = 1;
            shards = 1;
            batch = 1;
            ops = 100;
            wall_ns = 1_000;
            ops_per_sec = 1.0;
            mean_ns = 1.0;
            p50_ns = 1;
            p90_ns = 1;
            p99_ns = 1;
            max_ns = 1;
            neg_samples = 0;
          }
        in
        let old_line scheme =
          Printf.sprintf
            "    {\"rev\": \"abcdef0\", \"scheme\": %S, \"backend\": \
             \"native\", \"threads\": 1, \"shards\": 1, \"ops\": 7, \
             \"ops_per_sec\": 7.0}"
            scheme
        in
        let path = Filename.temp_file "bench_merge" ".json" in
        Fun.protect ~finally:(fun () -> try Sys.remove path with _ -> ())
        @@ fun () ->
        let oc = open_out path in
        output_string oc
          (Harness.Bench.to_json [ old_line "wfrc"; old_line "lfrc" ]);
        close_out oc;
        Harness.Bench.write_json ~path [ point ];
        let ic = open_in path in
        let n = in_channel_length ic in
        let merged = really_input_string ic n in
        close_in ic;
        check_bool "stale old-format wfrc line replaced" false
          (contains merged
             "\"scheme\": \"wfrc\", \"backend\": \"native\", \"threads\": \
              1, \"shards\": 1, \"ops\": 7");
        check_bool "fresh wfrc point present" true
          (contains merged "\"rep\": \"unboxed\"");
        check_bool "foreign lfrc point carried through" true
          (contains merged "\"scheme\": \"lfrc\""));
  ]

let registry_tests =
  [
    tc "all six schemes are registered" (fun () ->
        check_int "count" 6 (List.length Harness.Registry.names);
        List.iter
          (fun s ->
            let mm = mm_of s (small_cfg ()) in
            check_string "name matches" s (Mm_intf.name mm))
          Harness.Registry.names);
    tc "rc subset is correct" (fun () ->
        check_bool "wfrc rc" true (List.mem "wfrc" Harness.Registry.rc_names);
        check_bool "hp not rc" false (List.mem "hp" Harness.Registry.rc_names));
    tc "unknown scheme rejected with the known list" (fun () ->
        fails_with ~substring:"unknown scheme" (fun () ->
            Harness.Registry.find "nope"));
  ]

(* Bucket-precision and algebraic properties of the histogram — the
   guarantees the percentile documentation promises. *)
let hist_bucket_tests =
  [
    tc "bucket_value/bucket_of round-trip over every reachable bucket"
      (fun () ->
        (* walk the sample space densely below 2^16, then by strides;
           every bucket that [bucket_of] can produce is visited *)
        let seen = Hashtbl.create 64 in
        let visit v =
          let b = Hist.bucket_of v in
          if not (Hashtbl.mem seen b) then begin
            Hashtbl.add seen b ();
            check_int
              (Printf.sprintf "bucket_of (bucket_value %d)" b)
              b
              (Hist.bucket_of (Hist.bucket_value b))
          end
        in
        for v = 0 to 65_535 do
          visit v
        done;
        let v = ref 65_536 in
        while !v < 1_000_000_000 do
          visit !v;
          visit (!v + (!v / 17));
          v := !v + (!v / 23) + 1
        done);
    tc "small values are exact buckets" (fun () ->
        for v = 0 to 15 do
          check_int "identity bucket" v (Hist.bucket_of v);
          check_int "identity value" v (Hist.bucket_value v)
        done);
    qc "every sample is bracketed by its bucket"
      QCheck.(int_range 0 1_000_000_000)
      (fun v ->
        let b = Hist.bucket_of v in
        v <= Hist.bucket_value b
        && (b = 0 || Hist.bucket_value (b - 1) < v)
        (* one sub-bucket of relative error: upper bound <= v * 17/16 + 1 *)
        && Hist.bucket_value b <= (v * 17 / 16) + 1);
    qc "percentile is monotone in q"
      QCheck.(
        pair
          (list_of_size (Gen.int_range 1 100) (int_range 0 1_000_000))
          (list_of_size (Gen.int_range 2 8) (int_range 0 100)))
      (fun (vs, qs) ->
        let h = Hist.create () in
        List.iter (Hist.add h) vs;
        let ps =
          List.map
            (fun q -> Hist.percentile h (float_of_int q /. 100.0))
            (List.sort compare qs)
        in
        let rec mono = function
          | a :: (b :: _ as t) -> a <= b && mono t
          | _ -> true
        in
        mono ps);
    qc "merge_into is associative on the observables"
      QCheck.(
        triple
          (small_list (int_range 0 1_000_000))
          (small_list (int_range 0 1_000_000))
          (small_list (int_range 0 1_000_000)))
      (fun (xs, ys, zs) ->
        let mk vs =
          let h = Hist.create () in
          List.iter (Hist.add h) vs;
          h
        in
        let observe h =
          ( Hist.count h,
            Hist.min_value h,
            Hist.max_value h,
            Hist.percentile h 0.5,
            Hist.percentile h 0.9,
            Hist.percentile h 0.99 )
        in
        let l = mk xs in
        Hist.merge_into l (mk ys);
        Hist.merge_into l (mk zs);
        let yz = mk ys in
        Hist.merge_into yz (mk zs);
        let r = mk xs in
        Hist.merge_into r yz;
        observe l = observe r
        && abs_float (Hist.mean l -. Hist.mean r) < 1e-9);
    tc "n=0 edges: merging an empty histogram is the identity" (fun () ->
        let h = Hist.create () in
        Hist.add h 100;
        Hist.merge_into h (Hist.create ());
        check_int "count" 1 (Hist.count h);
        check_int "min" 100 (Hist.min_value h);
        check_int "max" 100 (Hist.max_value h);
        let e = Hist.create () in
        Hist.merge_into e (Hist.create ());
        check_int "empty+empty count" 0 (Hist.count e);
        check_int "empty min" 0 (Hist.min_value e);
        check_int "empty p0" 0 (Hist.percentile e 0.0);
        check_int "empty p100" 0 (Hist.percentile e 1.0));
  ]

module R = Harness.Report
module Sink = Harness.Sink

let sample_report () =
  R.make ~id:"T1" ~title:"a \"test\" report"
    ~cols:
      [ R.dim "scheme"; R.measure ~unit_:"ops/s" "tput"; R.measure "n" ]
    ~counters:[ ("cas_attempt", 7) ]
    ~meta:(R.meta ~seed:42 ~quick:true ~params:[ ("ops", "100") ] ())
    ~notes:[ "a note" ]
    [
      [ R.Str "wfrc"; R.Ops 2.5e6; R.Int 3 ];
      [ R.Str "lfrc"; R.Ops 3_200.0; R.Int 4 ];
    ]

let report_tests =
  [
    tc "cells render with the historical console formats" (fun () ->
        check_string "int" "42" (R.cell_to_string (R.Int 42));
        check_string "float" "1.5" (R.cell_to_string (R.Float 1.46));
        check_string "pct" "12.50%" (R.cell_to_string (R.Pct 12.5));
        check_string "ops" "2.50M" (R.cell_to_string (R.Ops 2.5e6));
        check_string "ns" "1.5us" (R.cell_to_string (R.Ns 1_500));
        check_string "str" "x" (R.cell_to_string (R.Str "x")));
    tc "make rejects ragged rows" (fun () ->
        fails_with (fun () ->
            R.make ~id:"X" ~title:"t"
              ~cols:[ R.dim "a"; R.measure "b" ]
              [ [ R.Int 1 ] ]));
    tc "headers and dims/measures derive from the columns" (fun () ->
        let r = sample_report () in
        check_bool "headers" true (R.headers r = [ "scheme"; "tput"; "n" ]);
        check_int "dims" 1 (List.length (R.dims r));
        check_int "measures" 2 (List.length (R.measures r)));
  ]

let sink_tests =
  [
    tc "table sink equals the legacy renderer on stringified cells"
      (fun () ->
        let r = sample_report () in
        check_string "same table"
          (Harness.Table.render ~headers:(R.headers r)
             ~rows:(R.row_strings r))
          (Sink.render Sink.Table r));
    tc "jsonl: one tagged object per row" (fun () ->
        let r = sample_report () in
        let lines =
          List.filter (fun l -> l <> "")
            (String.split_on_char '\n' (Sink.jsonl r))
        in
        check_int "line count" 2 (List.length lines);
        List.iter
          (fun l ->
            check_bool "tagged" true (contains l "\"report\": \"T1\""))
          lines);
    tc "to_json carries meta, columns, counters and escapes strings"
      (fun () ->
        let j = Sink.to_json (sample_report ()) in
        check_bool "escaped title" true (contains j "a \\\"test\\\" report");
        check_bool "quick flag" true (contains j "\"quick\": true");
        check_bool "seed" true (contains j "\"seed\": 42");
        check_bool "param" true (contains j "\"ops\": \"100\"");
        check_bool "unit" true (contains j "\"unit\": \"ops/s\"");
        check_bool "role" true (contains j "\"role\": \"dim\"");
        check_bool "counter" true (contains j "\"cas_attempt\": 7"));
    tc "write_json creates the directory and REPORT_<id>.json" (fun () ->
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "wfrc_sink_%d" (Unix.getpid ()))
        in
        let path = Sink.write_json ~dir (sample_report ()) in
        check_bool "filename" true
          (Filename.basename path = "REPORT_T1.json");
        check_bool "exists" true (Sys.file_exists path);
        Sys.remove path;
        Unix.rmdir dir);
  ]

let suite =
  hist_tests @ hist_bucket_tests @ fmt_tests @ table_tests @ report_tests
  @ sink_tests @ workload_tests @ runner_tests @ config_tests
  @ bench_report_tests @ registry_tests
