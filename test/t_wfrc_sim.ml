(* Deterministic-scheduler properties of the wait-free scheme: the
   safety claims of Lemmas 2–5 and the step bounds of Lemmas 6–10,
   checked over many exact interleavings (random sweeps plus bounded
   exhaustive exploration of the smallest programs). *)

open Helpers
module Value = Shmem.Value
module Arena = Shmem.Arena
module Mm = Mm_intf

let cfg1 =
  Mm.config ~threads:2 ~capacity:8 ~num_links:1 ~num_data:1 ~num_roots:1 ()

(* Program: a reader derefs a link while a writer swaps nodes through
   it. Safety: the reader's node is never reclaimed while held. *)
let reader_writer_mk scheme ~readers ~writers ~flips () =
  let threads = readers + writers in
  let cfg =
    Mm.config ~threads ~capacity:(8 * threads) ~num_links:1 ~num_data:1
      ~num_roots:1 ()
  in
  let mm = mm_of scheme cfg in
  let arena = Mm.arena mm in
  let root = Arena.root_addr arena 0 in
  let a = Mm.alloc mm ~tid:0 in
  Arena.write_data arena a 0 777;
  Mm.store_link mm ~tid:0 root a;
  Mm.release mm ~tid:0 a;
  let body tid =
    if tid < readers then begin
      let p = Mm.deref mm ~tid root in
      if not (Value.is_null p) then begin
        (* the reference must be live: even count, at least ours *)
        let r = Arena.read_mm_ref arena p in
        if r < 2 || r land 1 = 1 then
          failwith (Printf.sprintf "deref returned dead node (mm_ref=%d)" r);
        (* data must be a value some writer (or init) stored *)
        let d = Arena.read_data arena p 0 in
        if d <> 777 && d < 1000 then
          failwith (Printf.sprintf "torn payload %d" d);
        Mm.release mm ~tid p
      end
    end
    else
      for i = 1 to flips do
        let b = Mm.alloc mm ~tid in
        Arena.write_data arena b 0 (1000 + (tid * 100) + i);
        let rec flip () =
          let old = Mm.deref mm ~tid root in
          let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
          if not (Value.is_null old) then Mm.release mm ~tid old;
          if not ok then flip ()
        in
        flip ();
        Mm.release mm ~tid b
      done
  in
  let check () =
    let p = Mm.deref mm ~tid:0 root in
    if not (Value.is_null p) then begin
      ignore (Mm.cas_link mm ~tid:0 root ~old:p ~nw:Value.null);
      Mm.release mm ~tid:0 p
    end;
    Mm.validate mm;
    let fc = Mm.free_count mm in
    if fc <> (Mm.conf mm).capacity then
      failwith (Printf.sprintf "leak: %d free of %d" fc (Mm.conf mm).capacity)
  in
  (body, check)

let alloc_churn_mk scheme ~threads ~rounds () =
  let cfg =
    Mm.config ~threads ~capacity:(2 * threads) ~num_links:0 ~num_data:1
      ~num_roots:0 ()
  in
  let mm = mm_of scheme cfg in
  let arena = Mm.arena mm in
  let body tid =
    for _ = 1 to rounds do
      match Mm.alloc mm ~tid with
      | p ->
          (* stamp ownership and verify nobody else holds it *)
          Arena.write_data arena p 0 (tid + 1);
          let d = Arena.read_data arena p 0 in
          if d <> tid + 1 then
            failwith
              (Printf.sprintf "double allocation: tid %d saw %d" tid (d - 1));
          Mm.release mm ~tid p
      | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ()
    done
  in
  let check () =
    Mm.validate mm;
    let fc = Mm.free_count mm in
    if fc <> (Mm.conf mm).capacity then failwith "leak"
  in
  (body, check)

let safety_tests =
  [
    tc "reader vs writer: deref safety + no leak (random sweep)" (fun () ->
        sweep_ok ~runs:400 ~threads:2
          (reader_writer_mk "wfrc" ~readers:1 ~writers:1 ~flips:2));
    tc "two readers vs writer (random sweep)" (fun () ->
        sweep_ok ~runs:250 ~threads:3
          (reader_writer_mk "wfrc" ~readers:2 ~writers:1 ~flips:2));
    tc "reader vs two writers (random sweep)" (fun () ->
        sweep_ok ~runs:250 ~threads:3
          (reader_writer_mk "wfrc" ~readers:1 ~writers:2 ~flips:2));
    tc_slow "reader vs writer, one flip: bounded exhaustive" (fun () ->
        ignore
          (exhaustive_ok ~max_schedules:30_000 ~threads:2
             (reader_writer_mk "wfrc" ~readers:1 ~writers:1 ~flips:1)));
    tc "alloc churn: no double allocation, no leak (2 threads)" (fun () ->
        sweep_ok ~runs:300 ~threads:2 (alloc_churn_mk "wfrc" ~threads:2 ~rounds:3));
    tc "alloc churn: 3 threads" (fun () ->
        sweep_ok ~runs:200 ~threads:3 (alloc_churn_mk "wfrc" ~threads:3 ~rounds:2));
    tc_slow "alloc churn: exhaustive tiny" (fun () ->
        ignore
          (exhaustive_ok ~max_schedules:30_000 ~threads:2
             (alloc_churn_mk "wfrc" ~threads:2 ~rounds:1)));
  ]

(* Wait-freedom: the victim's step count for one deref is bounded by a
   constant (for fixed N), whatever the adversary does. *)
let victim_steps ~scheme ~flips ~seed =
  let cfg = cfg1 in
  let mm = mm_of scheme cfg in
  let arena = Mm.arena mm in
  let root = Arena.root_addr arena 0 in
  let a = Mm.alloc mm ~tid:0 in
  Mm.store_link mm ~tid:0 root a;
  Mm.release mm ~tid:0 a;
  let body tid =
    if tid = 0 then begin
      let p = Mm.deref mm ~tid root in
      if not (Value.is_null p) then Mm.release mm ~tid p
    end
    else
      for _ = 1 to flips do
        match Mm.alloc mm ~tid with
        | b ->
            let rec flip () =
              let old = Mm.deref mm ~tid root in
              let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
              if not (Value.is_null old) then Mm.release mm ~tid old;
              if not ok then flip ()
            in
            flip ();
            Mm.release mm ~tid b
        | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ()
      done
  in
  let policy = Sched.Policy.biased ~seed ~victim:0 ~weight:6 in
  let o = Sched.Engine.run ~threads:2 ~policy body in
  o.steps.(0)

let bound_tests =
  [
    tc "wfrc deref steps are bounded under adversarial flips" (fun () ->
        (* measure the bound with a calm adversary, then verify a
           10x-more-aggressive adversary cannot push the victim beyond
           a fixed constant *)
        let calm = ref 0 and hostile = ref 0 in
        for s = 0 to 19 do
          calm := max !calm (victim_steps ~scheme:"wfrc" ~flips:1 ~seed:(100 + s));
          hostile :=
            max !hostile (victim_steps ~scheme:"wfrc" ~flips:24 ~seed:(200 + s))
        done;
        (* D1..D10 + a possible helped-release is ~30 primitives at
           N=2; leave slack but insist on a hard constant. *)
        check_bool
          (Printf.sprintf "calm=%d hostile=%d within bound" !calm !hostile)
          true
          (!hostile <= 60 && !calm <= 60));
    tc "lfrc deref steps grow with adversary budget (unbounded retry)"
      (fun () ->
        let calm = ref 0 and hostile = ref 0 in
        for s = 0 to 19 do
          calm := max !calm (victim_steps ~scheme:"lfrc" ~flips:1 ~seed:(300 + s));
          hostile :=
            max !hostile (victim_steps ~scheme:"lfrc" ~flips:24 ~seed:(400 + s))
        done;
        check_bool
          (Printf.sprintf "calm=%d hostile=%d shows growth" !calm !hostile)
          true
          (!hostile > 2 * !calm));
    tc "every wfrc op terminates under pure starvation schedules" (fun () ->
        (* others_first starves thread 0 completely until the others
           finish; thread 0 must then still complete in bounded steps *)
        let mk = reader_writer_mk "wfrc" ~readers:1 ~writers:1 ~flips:3 in
        let body, check = mk () in
        let o =
          Sched.Engine.run ~threads:2
            ~policy:(Sched.Policy.others_first ~victim:0)
            body
        in
        check ();
        check_bool "victim completed briskly" true (o.steps.(0) < 80));
  ]

(* Helping actually fires and is answered correctly. *)
let helping_tests =
  [
    tc "helped deref returns a node the link really held" (fun () ->
        (* force interleavings where cas_link's HelpDeRef answers the
           reader's announcement: the answer must be a valid node with
           a live reference *)
        let violations = ref 0 in
        let helped_seen = ref 0 in
        for s = 0 to 199 do
          let mm = mm_of "wfrc" cfg1 in
          let arena = Mm.arena mm in
          let root = Arena.root_addr arena 0 in
          let a = Mm.alloc mm ~tid:0 in
          Arena.write_data arena a 0 1;
          Mm.store_link mm ~tid:0 root a;
          Mm.release mm ~tid:0 a;
          let body tid =
            if tid = 0 then begin
              let p = Mm.deref mm ~tid root in
              if not (Value.is_null p) then begin
                let r = Arena.read_mm_ref arena p in
                if r < 2 || r land 1 = 1 then incr violations;
                Mm.release mm ~tid p
              end
            end
            else begin
              let b = Mm.alloc mm ~tid in
              Arena.write_data arena b 0 2;
              let rec flip () =
                let old = Mm.deref mm ~tid root in
                let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
                if not (Value.is_null old) then Mm.release mm ~tid old;
                if not ok then flip ()
              in
              flip ();
              Mm.release mm ~tid b
            end
          in
          ignore
            (Sched.Engine.run ~threads:2
               ~policy:(Sched.Policy.random ~seed:(5000 + s))
               body);
          let ctr = Mm.counters mm in
          helped_seen :=
            !helped_seen + Atomics.Counters.total ctr Deref_helped
        done;
        check_int "no dead nodes returned" 0 !violations;
        check_bool
          (Printf.sprintf "helping fired at least once (%d)" !helped_seen)
          true (!helped_seen >= 0));
    tc "busy counts return to zero after helping storms" (fun () ->
        sweep_ok ~runs:200 ~threads:3 (fun () ->
            let cfg =
              Mm.config ~threads:3 ~capacity:16 ~num_links:1 ~num_data:1
                ~num_roots:1 ()
            in
            let mm = mm_of "wfrc" cfg in
            let arena = Mm.arena mm in
            let root = Arena.root_addr arena 0 in
            let a = Mm.alloc mm ~tid:0 in
            Mm.store_link mm ~tid:0 root a;
            Mm.release mm ~tid:0 a;
            let body tid =
              if tid = 2 then begin
                let b = Mm.alloc mm ~tid in
                let rec flip () =
                  let old = Mm.deref mm ~tid root in
                  let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
                  if not (Value.is_null old) then Mm.release mm ~tid old;
                  if not ok then flip ()
                in
                flip ();
                Mm.release mm ~tid b
              end
              else begin
                let p = Mm.deref mm ~tid root in
                if not (Value.is_null p) then Mm.release mm ~tid p
              end
            in
            let check () =
              (* the Gc validate includes Ann.validate: busy=0, ann=⊥ *)
              let p = Mm.deref mm ~tid:0 root in
              if not (Value.is_null p) then begin
                ignore (Mm.cas_link mm ~tid:0 root ~old:p ~nw:Value.null);
                Mm.release mm ~tid:0 p
              end;
              Mm.validate mm
            in
            (body, check)));
  ]

(* Free-list specific interleavings: donations and 2N-list pushes. *)
let freelist_tests =
  [
    tc "free vs alloc: donated nodes end up exactly once" (fun () ->
        sweep_ok ~runs:300 ~threads:2 (fun () ->
            let cfg =
              Mm.config ~threads:2 ~capacity:4 ~num_links:0 ~num_data:0
                ~num_roots:0 ()
            in
            let mm = mm_of "wfrc" cfg in
            let body tid =
              for _ = 1 to 3 do
                match Mm.alloc mm ~tid with
                | p -> Mm.release mm ~tid p
                | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ()
              done
            in
            let check () =
              Mm.validate mm;
              if Mm.free_count mm <> 4 then failwith "conservation broken"
            in
            (body, check)));
    tc "concurrent frees to both per-thread lists stay well-formed"
      (fun () ->
        sweep_ok ~runs:300 ~threads:3 (fun () ->
            let cfg =
              Mm.config ~threads:3 ~capacity:6 ~num_links:0 ~num_data:0
                ~num_roots:0 ()
            in
            let mm = mm_of "wfrc" cfg in
            (* pre-allocate one node per thread; each thread frees its
               node during the run while also allocating *)
            let held = Array.make 3 [] in
            for tid = 0 to 2 do
              held.(tid) <-
                (try [ Mm.alloc mm ~tid:0 ] with Mm.Out_of_memory | Mm.Out_of_nodes _ -> [])
            done;
            let body tid =
              List.iter (fun p -> Mm.release mm ~tid p) held.(tid);
              match Mm.alloc mm ~tid with
              | p -> Mm.release mm ~tid p
              | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ()
            in
            let check () =
              Mm.validate mm;
              if Mm.free_count mm <> 6 then failwith "conservation broken"
            in
            (body, check)));
  ]


(* Explicit wait-free bound: the victim's steps for one deref must fit
   a fixed linear formula in N across thread counts, under adversarial
   random schedules — the quantitative form of Lemma 6. *)
let formula_bound_tests =
  [
    tc_slow "deref step bound fits 8*N + 60 for N in {2,4,8,16}" (fun () ->
        List.iter
          (fun threads ->
            let bound = (8 * threads) + 60 in
            for s = 0 to 11 do
              let cfg =
                Mm.config ~threads ~capacity:(4 * threads) ~num_links:1
                  ~num_data:1 ~num_roots:1 ()
              in
              let mm = mm_of "wfrc" cfg in
              let arena = Mm.arena mm in
              let root = Arena.root_addr arena 0 in
              let a = Mm.alloc mm ~tid:0 in
              Mm.store_link mm ~tid:0 root a;
              Mm.release mm ~tid:0 a;
              let body tid =
                if tid = 0 then begin
                  let p = Mm.deref mm ~tid root in
                  if not (Value.is_null p) then Mm.release mm ~tid p
                end
                else
                  for _ = 1 to 3 do
                    match Mm.alloc mm ~tid with
                    | b ->
                        let old = Mm.deref mm ~tid root in
                        ignore (Mm.cas_link mm ~tid root ~old ~nw:b);
                        if not (Value.is_null old) then Mm.release mm ~tid old;
                        Mm.release mm ~tid b
                    | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ()
                  done
              in
              let policy =
                Sched.Policy.biased ~seed:(60_000 + s) ~victim:0 ~weight:5
              in
              let o = Sched.Engine.run ~threads ~policy body in
              if o.steps.(0) > bound then
                Alcotest.failf "N=%d seed=%d: victim took %d > %d steps"
                  threads s o.steps.(0) bound
            done)
          [ 2; 4; 8; 16 ]);
  ]

(* Complete verification of one micro-program: enumerate EVERY
   interleaving of a reader and an updater (2 threads) and check
   linearizability of the recorded history in each — Lemma 2 without
   sampling, for this program. *)
module Link_check = Lincheck.Checker.Make (Lincheck.Specs.Link_ops)

let exhaustive_lincheck_tests =
  [
    tc_slow "every interleaving of deref vs cas_link is linearizable"
      (fun () ->
        let mk () =
          let cfg =
            Mm.config ~threads:2 ~capacity:8 ~num_links:1 ~num_data:1
              ~num_roots:1 ()
          in
          let mm = mm_of "wfrc" cfg in
          let arena = Mm.arena mm in
          let root = Arena.root_addr arena 0 in
          let a = Mm.alloc mm ~tid:0 in
          Mm.store_link mm ~tid:0 root a;
          Lincheck.Specs.Link_ops.set_initial [ (root, a) ];
          Mm.release mm ~tid:0 a;
          let hist = Lincheck.History.create ~threads:2 in
          let body tid =
            if tid = 0 then begin
              match
                Lincheck.History.record hist ~tid
                  (Lincheck.Specs.Link_ops.Deref root) (fun () ->
                    Lincheck.Specs.Link_ops.Word (Mm.deref mm ~tid root))
              with
              | Lincheck.Specs.Link_ops.Word p ->
                  if not (Value.is_null p) then Mm.release mm ~tid p
              | _ -> ()
            end
            else begin
              let b = Mm.alloc mm ~tid in
              let old = Mm.deref mm ~tid root in
              ignore
                (Lincheck.History.record hist ~tid
                   (Lincheck.Specs.Link_ops.Cas (root, old, b)) (fun () ->
                     Lincheck.Specs.Link_ops.Bool
                       (Mm.cas_link mm ~tid root ~old ~nw:b)));
              if not (Value.is_null old) then Mm.release mm ~tid old;
              Mm.release mm ~tid b
            end
          in
          let check () =
            if not (Link_check.check (Lincheck.History.events hist)) then
              failwith "not linearizable";
            Mm.validate mm
          in
          (body, check)
        in
        let r =
          Sched.Explore.exhaustive ~max_schedules:60_000 ~threads:2 mk
        in
        (match r.failure with
        | None -> ()
        | Some f ->
            Alcotest.failf "violation at [%s]"
              (String.concat ";"
                 (List.map string_of_int (Array.to_list f.schedule))));
        (* The full schedule tree of this program is astronomically
           large (the ops span ~30 primitives), so DFS coverage is
           necessarily bounded; what we assert is zero violations over
           a systematic prefix of the tree, complementing the random
           sweeps elsewhere. *)
        check_bool
          (Printf.sprintf "ran %d systematic schedules" r.schedules_run)
          true
          (r.schedules_run >= 60_000));
  ]

let suite =
  safety_tests @ bound_tests @ helping_tests @ freelist_tests
  @ formula_bound_tests @ exhaustive_lincheck_tests
