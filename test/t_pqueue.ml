(* Skiplist priority queue (the paper's evaluation workload):
   sequential semantics vs the sorted-list model, duplicate keys,
   level distribution sanity, concurrent conservation and order, and
   deterministic-scheduler sweeps. RC schemes only (see pqueue.mli). *)

open Helpers
module Pq = Structures.Pqueue
module Model = Structures.Seqmodels.Pqueue_model
module Mm = Mm_intf

let mk scheme ?(threads = 2) ?(capacity = 128) ?(links = 4) () =
  let cfg =
    Mm.config ~threads ~capacity ~num_links:links ~num_data:3 ~num_roots:1 ()
  in
  let mm = mm_of scheme cfg in
  (mm, Pq.create mm ~seed:515 ~tid:0)

let seq_tests scheme =
  let pre name = Printf.sprintf "%s: %s" scheme name in
  [
    tc (pre "delete_min returns ascending keys") (fun () ->
        let mm, pq = mk scheme () in
        List.iter (fun k -> Pq.insert pq ~tid:0 k (k * 10)) [ 5; 1; 4; 2; 3 ];
        let out = Pq.drain pq ~tid:0 in
        check_bool "sorted keys" true (List.map fst out = [ 1; 2; 3; 4; 5 ]);
        check_bool "values ride along" true
          (List.map snd out = [ 10; 20; 30; 40; 50 ]);
        ignore mm);
    tc (pre "empty queue") (fun () ->
        let mm, pq = mk scheme () in
        check_bool "delmin empty" true (Pq.delete_min pq ~tid:0 = None);
        check_bool "is_empty" true (Pq.is_empty pq ~tid:0);
        Pq.insert pq ~tid:0 7 0;
        check_bool "not empty" false (Pq.is_empty pq ~tid:0);
        ignore (Pq.delete_min pq ~tid:0);
        check_bool "empty again" true (Pq.is_empty pq ~tid:0);
        ignore mm);
    tc (pre "duplicate keys all delivered") (fun () ->
        let mm, pq = mk scheme () in
        List.iter (fun v -> Pq.insert pq ~tid:0 5 v) [ 1; 2; 3 ];
        Pq.insert pq ~tid:0 1 0;
        Pq.insert pq ~tid:0 9 9;
        let out = Pq.drain pq ~tid:0 in
        check_bool "keys sorted" true (List.map fst out = [ 1; 5; 5; 5; 9 ]);
        check_bool "dup values all present" true
          (List.sort compare
             (List.filter_map
                (fun (k, v) -> if k = 5 then Some v else None)
                out)
          = [ 1; 2; 3 ]);
        ignore mm);
    tc (pre "reserved keys rejected") (fun () ->
        let mm, pq = mk scheme () in
        fails_with (fun () -> Pq.insert pq ~tid:0 max_int 0);
        fails_with (fun () -> Pq.insert pq ~tid:0 min_int 0);
        ignore mm);
    tc (pre "memory fully recycled after drain") (fun () ->
        let mm, pq = mk scheme ~capacity:64 () in
        for round = 0 to 20 do
          for i = 1 to 20 do
            Pq.insert pq ~tid:0 ((round * 20) + i) i
          done;
          ignore (Pq.drain pq ~tid:0)
        done;
        assert_all_free ~reserved:2 mm);
    qc ~count:60
      (pre "differential vs sorted-list model")
      QCheck.(list_of_size (Gen.int_range 0 80) (option (int_range 1 20)))
      (fun script ->
        let mm, pq = mk scheme ~capacity:256 () in
        let m = Model.create () in
        let ok =
          List.for_all
            (fun op ->
              match op with
              | Some k ->
                  Pq.insert pq ~tid:0 k k;
                  Model.insert m k k;
                  true
              | None -> (
                  (* equal keys may come out in any order: compare keys *)
                  match (Pq.delete_min pq ~tid:0, Model.delete_min m) with
                  | None, None -> true
                  | Some (k1, _), Some (k2, _) -> k1 = k2
                  | _ -> false))
            script
        in
        ignore mm;
        ok
        && List.map fst (Pq.drain pq ~tid:0) = Model.sorted_keys m);
  ]

let conc_tests scheme =
  let pre name = Printf.sprintf "%s: %s" scheme name in
  [
    tc (pre "concurrent conservation of (key,value) multiset") (fun () ->
        let threads = 4 in
        let mm, pq = mk scheme ~threads ~capacity:256 ~links:6 () in
        let ins = Array.init threads (fun _ -> ref []) in
        let del = Array.init threads (fun _ -> ref []) in
        ignore
          (Harness.Runner.run ~threads (fun ~tid ->
               let rng = Sched.Rng.create (tid * 17) in
               for i = 1 to 1_000 do
                 if Sched.Rng.bool rng then begin
                   let k = 1 + Sched.Rng.int rng 500 in
                   let v = (tid * 1_000_000) + i in
                   try
                     Pq.insert pq ~tid k v;
                     ins.(tid) := (k, v) :: !(ins.(tid))
                   with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ()
                 end
                 else
                   match Pq.delete_min pq ~tid with
                   | Some kv -> del.(tid) := kv :: !(del.(tid))
                   | None -> ()
               done));
        let rest = Pq.drain pq ~tid:0 in
        check_bool "drained ascending" true
          (List.map fst rest = List.sort compare (List.map fst rest));
        let all_ins = List.concat_map (fun r -> !r) (Array.to_list ins) in
        let all_del =
          rest @ List.concat_map (fun r -> !r) (Array.to_list del)
        in
        check_bool "multiset conserved" true
          (List.sort compare all_ins = List.sort compare all_del);
        assert_all_free ~reserved:2 mm);
    tc (pre "delete_min never invents keys") (fun () ->
        let threads = 2 in
        let mm, pq = mk scheme ~threads ~capacity:128 () in
        let inserted = Array.make 1001 false in
        let bad = Atomic.make 0 in
        ignore
          (Harness.Runner.run ~threads (fun ~tid ->
               let rng = Sched.Rng.create (tid * 23) in
               for _ = 1 to 1_500 do
                 if tid = 0 then begin
                   let k = 1 + Sched.Rng.int rng 1000 in
                   (* flag before insert: the flag must be visible by
                      the time the key can possibly be dequeued *)
                   inserted.(k) <- true;
                   try Pq.insert pq ~tid k k with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ()
                 end
                 else
                   match Pq.delete_min pq ~tid with
                   | Some (k, _) ->
                       if k < 1 || k > 1000 || not inserted.(k) then
                         Atomic.incr bad
                   | None -> ()
               done));
        check_int "no invented keys" 0 (Atomic.get bad);
        ignore (Pq.drain pq ~tid:0);
        assert_all_free ~reserved:2 mm);
  ]

let sim_tests =
  [
    tc "wfrc pq: deterministic sweep conserves keys + memory" (fun () ->
        sweep_ok ~runs:120 ~threads:2 (fun () ->
            let mm, pq = mk "wfrc" ~capacity:32 ~links:3 () in
            Pq.insert pq ~tid:0 50 0;
            let got = Array.make 2 [] in
            let body tid =
              Pq.insert pq ~tid (10 + tid) tid;
              match Pq.delete_min pq ~tid with
              | Some (k, _) -> got.(tid) <- k :: got.(tid)
              | None -> failwith "delete_min lost a key"
            in
            let check () =
              let rest = List.map fst (Pq.drain pq ~tid:0) in
              let all = List.sort compare (rest @ got.(0) @ got.(1)) in
              if all <> [ 10; 11; 50 ] then
                failwith
                  ("keys not conserved: "
                  ^ String.concat "," (List.map string_of_int all));
              Mm.validate mm;
              if Mm.free_count mm <> 30 then failwith "leak"
            in
            (body, check)));
    tc "wfrc pq: concurrent inserts all land (sweep)" (fun () ->
        sweep_ok ~runs:120 ~threads:2 (fun () ->
            let mm, pq = mk "wfrc" ~capacity:32 ~links:3 () in
            let body tid = Pq.insert pq ~tid (tid + 1) tid in
            let check () =
              let rest = List.map fst (Pq.drain pq ~tid:0) in
              if rest <> [ 1; 2 ] then failwith "lost insert";
              Mm.validate mm;
              if Mm.free_count mm <> 30 then failwith "leak"
            in
            (body, check)));
    tc "wfrc pq: concurrent delete_min hands out distinct nodes (sweep)"
      (fun () ->
        sweep_ok ~runs:120 ~threads:2 (fun () ->
            let mm, pq = mk "wfrc" ~capacity:32 ~links:3 () in
            Pq.insert pq ~tid:0 1 100;
            Pq.insert pq ~tid:0 2 200;
            let got = Array.make 2 (-1) in
            let body tid =
              match Pq.delete_min pq ~tid with
              | Some (_, v) -> got.(tid) <- v
              | None -> failwith "nothing to delete"
            in
            let check () =
              if got.(0) = got.(1) then failwith "same element twice";
              if List.sort compare [ got.(0); got.(1) ] <> [ 100; 200 ] then
                failwith "wrong elements";
              Mm.validate mm;
              if Mm.free_count mm <> 30 then failwith "leak"
            in
            (body, check)));
  ]

let level_tests =
  [
    tc "level distribution is geometric-ish" (fun () ->
        (* insert many, verify the structure still works and memory is
           conserved — the level distribution shows indirectly through
           functioning multi-level search *)
        let mm, pq = mk "wfrc" ~capacity:2048 ~links:8 () in
        let rng = Sched.Rng.create 9 in
        let keys = Array.init 1_500 (fun _ -> 1 + Sched.Rng.int rng 100_000) in
        Array.iter (fun k -> Pq.insert pq ~tid:0 k k) keys;
        let out = List.map fst (Pq.drain pq ~tid:0) in
        check_bool "all inserted delivered sorted" true
          (out = List.sort compare (Array.to_list keys));
        assert_all_free ~reserved:2 mm);
  ]

let suite =
  List.concat_map seq_tests rc_schemes
  @ List.concat_map conc_tests rc_schemes
  @ sim_tests @ level_tests
  @ [
      tc "non-RC schemes are rejected (the §1 applicability gap)" (fun () ->
          let cfg =
            Mm.config ~threads:2 ~capacity:32 ~num_links:4 ~num_data:3
              ~num_roots:1 ()
          in
          fails_with ~substring:"reference counting" (fun () ->
              Pq.create (mm_of "hp" cfg) ~seed:1 ~tid:0);
          fails_with ~substring:"reference counting" (fun () ->
              Pq.create (mm_of "ebr" cfg) ~seed:1 ~tid:0));
    ]
