(* The analysis layer (lib/analysis): vector-clock happens-before,
   the reclamation-safety oracle, instrumentation hygiene, failure
   reporting, oracle-guarded exploration of all five managers, and
   non-vacuity — seeded bugs (skipped hazard validation, over-release,
   dropped release) must be caught with a replayable trace. *)

open Helpers
module Sp = Atomics.Schedpoint
module C = Atomics.Counters
module Hb = Analysis.Hb
module Reclaim = Analysis.Reclaim
module Layout = Shmem.Layout

(* ---------------- Happens-before ---------------------------------- *)

let hb_tests =
  [
    tc "write/read pair orders across threads" (fun () ->
        let hb = Hb.create ~threads:2 in
        (* tick t0 so its clock is distinguishable from the origin *)
        Hb.on_access hb ~tid:0 ~addr:(-1) Sp.Cas;
        let s0 = Hb.snapshot hb ~tid:0 in
        check_bool "not ordered yet" false (Hb.hb_after hb ~tid:1 s0);
        Hb.on_access hb ~tid:0 ~addr:100 Sp.Write;
        Hb.on_access hb ~tid:1 ~addr:100 Sp.Read;
        check_bool "ordered through location 100" true
          (Hb.hb_after hb ~tid:1 s0));
    tc "disjoint locations do not order" (fun () ->
        let hb = Hb.create ~threads:2 in
        Hb.on_access hb ~tid:0 ~addr:(-1) Sp.Cas;
        let s0 = Hb.snapshot hb ~tid:0 in
        Hb.on_access hb ~tid:0 ~addr:100 Sp.Write;
        Hb.on_access hb ~tid:1 ~addr:101 Sp.Read;
        check_bool "still unordered" false (Hb.hb_after hb ~tid:1 s0));
    tc "rmws chain through the coarse non-arena channel" (fun () ->
        let hb = Hb.create ~threads:2 in
        Hb.on_access hb ~tid:0 ~addr:(-1) Sp.Cas;
        let s0 = Hb.snapshot hb ~tid:0 in
        (* any two non-arena cells share one channel: t0 releases via a
           faa on "one cell", t1 acquires via a cas on "another" *)
        Hb.on_access hb ~tid:0 ~addr:(-1) Sp.Faa;
        Hb.on_access hb ~tid:1 ~addr:(-1) Sp.Cas;
        check_bool "ordered through the coarse channel" true
          (Hb.hb_after hb ~tid:1 s0));
    tc "dominated is pointwise" (fun () ->
        check_bool "le" true (Hb.dominated [| 1; 2 |] [| 2; 2 |]);
        check_bool "eq" true (Hb.dominated [| 1; 2 |] [| 1; 2 |]);
        check_bool "incomparable" false (Hb.dominated [| 2; 1 |] [| 1; 2 |]));
    tc "out-of-engine tids are inert" (fun () ->
        let hb = Hb.create ~threads:2 in
        Hb.on_access hb ~tid:(-1) ~addr:100 Sp.Write;
        Hb.on_access hb ~tid:5 ~addr:100 Sp.Cas;
        Alcotest.(check (array int))
          "snapshot is the origin" [| 0; 0 |]
          (Hb.snapshot hb ~tid:(-1));
        check_bool "hb_after is conservatively false" false
          (Hb.hb_after hb ~tid:(-1) [| 0; 0 |]);
        (* and nothing leaked into real threads *)
        Hb.on_access hb ~tid:1 ~addr:100 Sp.Read;
        Alcotest.(check (array int))
          "t1 unaffected" [| 0; 0 |]
          (Hb.snapshot hb ~tid:1));
  ]

(* ---------------- Instrumentation hooks --------------------------- *)

let instr_tests =
  [
    tc "with_hook restores a validator installed inside" (fun () ->
        check_bool "none before" false (Sp.validator_installed ());
        Sp.with_hook
          (fun () -> ())
          (fun () ->
            Sp.install_validator (fun ~addr:_ _ -> ());
            check_bool "installed inside" true (Sp.validator_installed ()));
        check_bool "restored after the run" false (Sp.validator_installed ()));
    tc "with_validator restores on exception" (fun () ->
        (try
           Sp.with_validator
             (fun ~addr:_ _ -> ())
             (fun () -> failwith "boom")
         with Failure _ -> ());
        check_bool "restored" false (Sp.validator_installed ()));
    tc "hit_at delivers address and kind" (fun () ->
        let got = ref [] in
        Sp.with_validator
          (fun ~addr k -> got := (addr, k) :: !got)
          (fun () ->
            Sp.hit_at ~addr:7 Sp.Read;
            Sp.hit_at ~addr:(-1) Sp.Faa);
        check_bool "both deliveries, in order" true
          (List.rev !got = [ (7, Sp.Read); ((-1), Sp.Faa) ]));
    tc "Sim arena word ops report global addresses" (fun () ->
        let layout = Layout.create ~num_links:1 ~num_data:1 in
        let arena = Arena.create ~layout ~capacity:2 ~num_roots:1 () in
        let base = Arena.addr_base arena in
        let r = Arena.root_addr arena 0 in
        let got = ref [] in
        Sp.with_validator
          (fun ~addr k -> got := (addr, k) :: !got)
          (fun () ->
            ignore (Arena.read arena r);
            Arena.write arena r 4;
            ignore (Arena.cas arena r ~old:4 ~nw:6);
            ignore (Arena.faa arena r 2);
            ignore (Arena.swap arena r 0));
        check_bool "five accesses at base + root, right kinds" true
          (List.rev !got
          = [
              (base + r, Sp.Read);
              (base + r, Sp.Write);
              (base + r, Sp.Cas);
              (base + r, Sp.Faa);
              (base + r, Sp.Swap);
            ]));
    tc "managers emit lifecycle events" (fun () ->
        List.iter
          (fun scheme ->
            let mm = mm_of scheme (small_cfg ~capacity:8 ()) in
            let log = ref [] in
            let handle = ref 0 in
            Mm.Events.with_listener
              (fun ~tid:_ p lc -> log := (Value.handle p, lc) :: !log)
              (fun () ->
                Mm.enter_op mm ~tid:0;
                let a = Mm.alloc mm ~tid:0 in
                handle := Value.handle a;
                Arena.write_data (Mm.arena mm) a 0 7;
                Mm.release mm ~tid:0 a;
                Mm.terminate mm ~tid:0 a;
                Mm.exit_op mm ~tid:0;
                (* wfrc_deferred parks the decrement in its rc buffer;
                   quiescence (free_count drains every buffer) makes the
                   Free event land like the eager schemes' *)
                if scheme = "wfrc_deferred" then ignore (Mm.free_count mm));
            let expected =
              if Mm.refcounted mm then
                [ (!handle, Mm.Events.Alloc); (!handle, Mm.Events.Free) ]
              else [ (!handle, Mm.Events.Alloc); (!handle, Mm.Events.Retire) ]
            in
            if List.rev !log <> expected then
              Alcotest.failf "%s: unexpected lifecycle stream [%s]" scheme
                (String.concat "; "
                   (List.rev_map
                      (fun (h, lc) ->
                        Printf.sprintf "#%d %s" h (Mm.Events.lifecycle_name lc))
                      !log)))
          all_schemes;
        check_bool "listener restored" false (Mm.Events.installed ()));
  ]

(* ---------------- Oracle unit tests ------------------------------- *)

let mk_det ?counters () =
  let layout = Layout.create ~num_links:1 ~num_data:2 in
  let arena = Arena.create ~layout ~capacity:4 ~num_roots:1 () in
  (arena, Reclaim.create ?counters ~arena ~threads:2 ())

let data_ga arena p i = Arena.addr_base arena + Arena.data_addr arena p i

let oracle_tests =
  [
    tc "free-node data access is a use-after-free" (fun () ->
        let arena, det = mk_det () in
        let p = Value.of_handle 1 in
        Reclaim.on_event det ~tid:0 p Mm.Events.Alloc;
        Reclaim.on_event det ~tid:0 p Mm.Events.Free;
        (* header words stay accessible — the allocator's channel *)
        Reclaim.on_access det ~tid:1
          ~addr:(Arena.addr_base arena + Arena.mm_ref_addr arena p)
          Sp.Faa;
        Reclaim.on_access det ~tid:1
          ~addr:(Arena.addr_base arena + Arena.mm_next_addr arena p)
          Sp.Write;
        fails_with ~substring:"use-after-free" (fun () ->
            Reclaim.on_access det ~tid:1 ~addr:(data_ga arena p 0) Sp.Read);
        check_bool "violation recorded" true
          (List.exists
             (fun m -> contains m "use-after-free")
             (Reclaim.violations det)));
    tc "roots and out-of-window cells are never flagged" (fun () ->
        let arena, det = mk_det () in
        (* all nodes FREE, yet none of these accesses is an error *)
        Reclaim.on_access det ~tid:0
          ~addr:(Arena.addr_base arena + Arena.root_addr arena 0)
          Sp.Cas;
        Reclaim.on_access det ~tid:0 ~addr:(-1) Sp.Write;
        Reclaim.on_access det ~tid:0
          ~addr:(Arena.addr_base arena + Arena.num_cells arena + 17)
          Sp.Read;
        check_int "only in-window accesses counted" 1 (Reclaim.accesses det));
    tc "double free and bad retire" (fun () ->
        let _, det = mk_det () in
        let p = Value.of_handle 2 in
        fails_with ~substring:"bad retire" (fun () ->
            Reclaim.on_event det ~tid:0 p Mm.Events.Retire);
        Reclaim.on_event det ~tid:0 p Mm.Events.Alloc;
        Reclaim.on_event det ~tid:1 p Mm.Events.Retire;
        Reclaim.on_event det ~tid:1 p Mm.Events.Free;
        fails_with ~substring:"double-free" (fun () ->
            Reclaim.on_event det ~tid:0 p Mm.Events.Free));
    tc "allocation of a live node is corruption" (fun () ->
        let _, det = mk_det () in
        let p = Value.of_handle 1 in
        Reclaim.on_event det ~tid:0 p Mm.Events.Alloc;
        fails_with ~substring:"corrupt allocation" (fun () ->
            Reclaim.on_event det ~tid:1 p Mm.Events.Alloc));
    tc "allocation must happen after the reclaiming free" (fun () ->
        let _, det = mk_det () in
        let p = Value.of_handle 1 in
        Reclaim.on_access det ~tid:0 ~addr:(-1) Sp.Cas;
        Reclaim.on_event det ~tid:0 p Mm.Events.Alloc;
        Reclaim.on_event det ~tid:0 p Mm.Events.Free;
        fails_with ~substring:"unordered allocation" (fun () ->
            Reclaim.on_event det ~tid:1 p Mm.Events.Alloc);
        (* after acquiring the freer's clock the allocation is legal *)
        Reclaim.on_access det ~tid:0 ~addr:200 Sp.Write;
        Reclaim.on_access det ~tid:1 ~addr:200 Sp.Read;
        Reclaim.on_event det ~tid:1 p Mm.Events.Alloc);
    tc "stale access across a reclamation is unordered" (fun () ->
        let arena, det = mk_det () in
        let p = Value.of_handle 1 in
        Reclaim.on_access det ~tid:0 ~addr:(-1) Sp.Cas;
        Reclaim.on_event det ~tid:0 p Mm.Events.Alloc;
        Reclaim.on_event det ~tid:0 p Mm.Events.Free;
        Reclaim.on_event det ~tid:0 p Mm.Events.Alloc;
        (* t1 holds a reference from before the free: ABA shape *)
        fails_with ~substring:"unordered access" (fun () ->
            Reclaim.on_access det ~tid:1 ~addr:(data_ga arena p 0) Sp.Write);
        (* ...but a reader ordered after the free is fine *)
        Reclaim.on_access det ~tid:0 ~addr:300 Sp.Write;
        Reclaim.on_access det ~tid:1 ~addr:300 Sp.Read;
        Reclaim.on_access det ~tid:1 ~addr:(data_ga arena p 0) Sp.Write);
    tc "leak accounting: live leaks, retired does not" (fun () ->
        let _, det = mk_det () in
        Reclaim.on_event det ~tid:0 (Value.of_handle 1) Mm.Events.Alloc;
        Reclaim.on_event det ~tid:0 (Value.of_handle 2) Mm.Events.Alloc;
        Reclaim.on_event det ~tid:0 (Value.of_handle 2) Mm.Events.Retire;
        Alcotest.(check (list int)) "only the live node" [ 1 ]
          (Reclaim.leaked det);
        fails_with ~substring:"leak" (fun () -> Reclaim.check_all_free det);
        Reclaim.check_all_free ~reserved:1 det);
    tc "instrumented accesses tally into Counters" (fun () ->
        let ctr = C.create ~threads:2 () in
        let arena, det = mk_det ~counters:ctr () in
        let p = Value.of_handle 1 in
        Reclaim.on_event det ~tid:0 p Mm.Events.Alloc;
        let ga = data_ga arena p 0 in
        Reclaim.on_access det ~tid:0 ~addr:ga Sp.Read;
        Reclaim.on_access det ~tid:0 ~addr:ga Sp.Write;
        Reclaim.on_access det ~tid:1 ~addr:ga Sp.Faa;
        Reclaim.on_access det ~tid:0 ~addr:(-1) Sp.Swap;
        Reclaim.on_access det ~tid:(-1) ~addr:ga Sp.Cas;
        check_int "reads" 1 (C.total ctr C.Read);
        check_int "writes" 1 (C.total ctr C.Write);
        check_int "faa" 1 (C.total ctr C.Faa);
        check_int "swap outside the window untallied" 0 (C.total ctr C.Swap);
        check_int "out-of-engine access untallied" 0
          (C.total ctr C.Cas_attempt);
        check_int "window accesses" 4 (Reclaim.accesses det));
  ]

(* ---------------- Counterexample reporting ------------------------ *)

let report_tests =
  [
    tc "failure_message carries seed, trace and replay recipe" (fun () ->
        let f =
          {
            Sched.Explore.schedule = [| 0; 1; 1; 0 |];
            seed = Some 42;
            exn = Failure "boom";
          }
        in
        let msg = Sched.Explore.failure_message f in
        List.iter
          (fun s -> check_bool s true (contains msg s))
          [
            "boom";
            "random policy seed: 42";
            "choice trace (4 decisions)";
            "replay with Explore.replay ~schedule:[|0;1;1;0|]";
          ]);
    tc "random sweep failures replay deterministically" (fun () ->
        (* a lost update: non-atomic read-modify-write on one cell *)
        let mk () =
          let layout = Layout.create ~num_links:0 ~num_data:0 in
          let arena = Arena.create ~layout ~capacity:1 ~num_roots:1 () in
          let r = Arena.root_addr arena 0 in
          let body _tid =
            let v = Arena.read arena r in
            Arena.write arena r (v + 1)
          in
          let check () =
            if Arena.read arena r <> 2 then failwith "lost update"
          in
          (body, check)
        in
        match
          (Sched.Explore.random_sweep ~threads:2 ~runs:200 ~seed:7 mk).failure
        with
        | None -> Alcotest.fail "expected a lost update"
        | Some f -> (
            check_bool "seed recorded" true (f.seed <> None);
            match Sched.Explore.replay ~threads:2 ~schedule:f.schedule mk with
            | Some f' ->
                check_bool "replay reproduces the same failure" true
                  (contains (Printexc.to_string f'.exn) "lost update")
            | None -> Alcotest.fail "replay did not reproduce the failure"));
  ]

(* ---------------- Oracle-guarded exploration of the managers ------ *)

(* Program A — private-node churn: each thread allocates, touches the
   data words, releases and terminates. Exercises alloc/free ordering
   (R2/R3) across the free store with zero shared links. *)
let churn_factory scheme () =
  let cfg =
    Mm.config ~threads:2 ~capacity:8 ~num_links:1 ~num_data:1 ~num_roots:1 ()
  in
  let mm = mm_of scheme cfg in
  let arena = Mm.arena mm in
  ( arena,
    fun () ->
      let body tid =
        Mm.enter_op mm ~tid;
        let a = Mm.alloc mm ~tid in
        Arena.write_data arena a 0 (100 + tid);
        ignore (Arena.read_data arena a 0);
        Mm.release mm ~tid a;
        Mm.terminate mm ~tid a;
        Mm.exit_op mm ~tid
      in
      (body, fun () -> Mm.validate mm) )

(* Program B — one contended root link: both threads try to swing the
   root to their own node, the winner's predecessor is unlinked,
   terminated and reclaimed while the loser still holds references.
   Exercises deref/cas_link/free races, i.e. rules R1 and R2. *)
let contend_factory scheme () =
  let cfg =
    Mm.config ~threads:2 ~capacity:8 ~num_links:1 ~num_data:1 ~num_roots:1 ()
  in
  let mm = mm_of scheme cfg in
  let arena = Mm.arena mm in
  ( arena,
    fun () ->
      let root = Arena.root_addr arena 0 in
      let x = Mm.alloc mm ~tid:0 in
      Arena.write_data arena x 0 99;
      Mm.store_link mm ~tid:0 root x;
      Mm.release mm ~tid:0 x;
      let body tid =
        Mm.enter_op mm ~tid;
        let a = Mm.alloc mm ~tid in
        Arena.write_data arena a 0 (10 + tid);
        let old = Mm.deref mm ~tid root in
        if Mm.cas_link mm ~tid root ~old ~nw:a then begin
          if not (Value.is_null old) then Mm.terminate mm ~tid old
        end
        else
          (* lost the race: our node never got linked — discard it *)
          Mm.terminate mm ~tid a;
        if not (Value.is_null old) then Mm.release mm ~tid old;
        Mm.release mm ~tid a;
        Mm.exit_op mm ~tid
      in
      let check () =
        Mm.enter_op mm ~tid:0;
        let w = Mm.deref mm ~tid:0 root in
        Mm.store_link mm ~tid:0 root Value.null;
        if not (Value.is_null w) then begin
          Mm.terminate mm ~tid:0 w;
          Mm.release mm ~tid:0 w
        end;
        Mm.exit_op mm ~tid:0;
        Mm.validate mm
      in
      (body, check) )

let explore_with_oracle ?counters ~max_schedules factory =
  Reclaim.with_oracle (fun () ->
      exhaustive_ok ~max_schedules ~threads:2
        (Reclaim.instrument ?counters ~expect_all_free:true ~threads:2 factory))

let manager_tests =
  List.concat_map
    (fun scheme ->
      [
        tc
          (Printf.sprintf "%s: churn program clean under the oracle" scheme)
          (fun () ->
            ignore (explore_with_oracle ~max_schedules:5_000 (churn_factory scheme)));
        tc
          (Printf.sprintf "%s: contended-root program clean under the oracle"
             scheme)
          (fun () ->
            ignore
              (explore_with_oracle ~max_schedules:3_000 (contend_factory scheme)));
      ])
    all_schemes
  @ [
      tc "oracle access tally reaches the counters" (fun () ->
          let ctr = C.create ~threads:2 () in
          ignore
            (explore_with_oracle ~counters:ctr ~max_schedules:50
               (churn_factory "wfrc"));
          check_bool "reads observed" true (C.total ctr C.Read > 0);
          check_bool "writes observed" true (C.total ctr C.Write > 0);
          check_bool "faas observed" true (C.total ctr C.Faa > 0));
    ]

(* ---------------- Non-vacuity: seeded bugs ------------------------ *)

(* Skipped hazard validation — the classic HP bug: the slot is
   published but the link is not re-read, so a node reclaimed between
   the read and the publish is used after free. The race needs the
   reader parked across a whole retirement scan, so it is surfaced
   with a biased sweep that starves the reader. *)
let hp_factory mutated () =
  let cfg =
    Mm.config ~threads:2 ~capacity:16 ~num_links:1 ~num_data:1 ~num_roots:1 ()
  in
  let h = Hazard.create cfg in
  if mutated then Hazard.unsafe_skip_validation h;
  let arena = Hazard.arena h in
  ( arena,
    fun () ->
      let root = Arena.root_addr arena 0 in
      let x0 = Hazard.alloc h ~tid:0 in
      Arena.write_data arena x0 0 1;
      Hazard.store_link h ~tid:0 root x0;
      Hazard.release h ~tid:0 x0;
      let body tid =
        if tid = 0 then
          for _ = 1 to 10 do
            let w = Hazard.deref h ~tid root in
            if not (Value.is_null w) then begin
              ignore (Arena.read_data arena (Value.unmark w) 0);
              Hazard.release h ~tid w
            end
          done
        else
          for i = 1 to 8 do
            let n = Hazard.alloc h ~tid in
            Arena.write_data arena n 0 (i + 1);
            let old = Hazard.deref h ~tid root in
            if Hazard.cas_link h ~tid root ~old ~nw:n then begin
              if not (Value.is_null old) then Hazard.terminate h ~tid old
            end;
            if not (Value.is_null old) then Hazard.release h ~tid old;
            Hazard.release h ~tid n
          done
      in
      (body, fun () -> ()) )

let hp_sweep mutated =
  Reclaim.with_oracle (fun () ->
      Sched.Explore.policy_sweep ~threads:2 ~runs:200
        ~policy:(fun i ->
          Sched.Policy.biased ~seed:(7_000 + i) ~victim:0 ~weight:24)
        (Reclaim.instrument ~threads:2 (hp_factory mutated)))

(* Over-release — a client releases the same reference twice, so the
   node is reclaimed while the root still links it (premature free). *)
let overrelease_factory extra () =
  let cfg =
    Mm.config ~threads:2 ~capacity:8 ~num_links:1 ~num_data:1 ~num_roots:1 ()
  in
  let mm = mm_of "wfrc" cfg in
  let arena = Mm.arena mm in
  ( arena,
    fun () ->
      let root = Arena.root_addr arena 0 in
      let x = Mm.alloc mm ~tid:0 in
      Arena.write_data arena x 0 5;
      Mm.store_link mm ~tid:0 root x;
      Mm.release mm ~tid:0 x;
      let body tid =
        if tid = 0 then begin
          let v = Mm.deref mm ~tid root in
          if not (Value.is_null v) then begin
            Mm.release mm ~tid v;
            if extra then Mm.release mm ~tid v
          end
        end
        else begin
          let w = Mm.deref mm ~tid root in
          if not (Value.is_null w) then begin
            ignore (Arena.read_data arena (Value.unmark w) 0);
            Mm.release mm ~tid w
          end
        end
      in
      (body, fun () -> ()) )

let overrelease_explore extra =
  Reclaim.with_oracle (fun () ->
      Sched.Explore.exhaustive ~max_schedules:400 ~threads:2
        (Reclaim.instrument ~threads:2 (overrelease_factory extra)))

(* Dropped release — an unbalanced deref/alloc leaks the node. *)
let leak_factory dropped () =
  let cfg =
    Mm.config ~threads:2 ~capacity:8 ~num_links:1 ~num_data:1 ~num_roots:1 ()
  in
  let mm = mm_of "wfrc" cfg in
  let arena = Mm.arena mm in
  ( arena,
    fun () ->
      let body tid =
        Mm.enter_op mm ~tid;
        let a = Mm.alloc mm ~tid in
        Arena.write_data arena a 0 tid;
        if not dropped then Mm.release mm ~tid a;
        Mm.exit_op mm ~tid
      in
      (body, fun () -> ()) )

let leak_explore dropped =
  Reclaim.with_oracle (fun () ->
      Sched.Explore.exhaustive ~max_schedules:60 ~threads:2
        (Reclaim.instrument ~expect_all_free:true ~threads:2
           (leak_factory dropped)))

let assert_clean what (r : Sched.Explore.result) =
  match r.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "%s flagged a clean run: %s" what
        (Sched.Explore.failure_message f)

let assert_caught what ~rule (r : Sched.Explore.result) ~replay =
  match r.failure with
  | None -> Alcotest.failf "%s: seeded bug not caught" what
  | Some f -> (
      let msg = Sched.Explore.failure_message f in
      check_bool (what ^ ": right rule fired") true (contains msg rule);
      check_bool (what ^ ": trace in the report") true
        (contains msg "choice trace");
      match replay f.Sched.Explore.schedule with
      | Some f' ->
          check_bool
            (what ^ ": replay reproduces the violation")
            true
            (contains (Printexc.to_string f'.Sched.Explore.exn) rule)
      | None -> Alcotest.failf "%s: replay did not reproduce" what)

let mutation_tests =
  [
    tc "clean hp survives the starved-reader sweep" (fun () ->
        assert_clean "hp sweep" (hp_sweep false));
    tc "seeded hp validation skip is caught and replays" (fun () ->
        assert_caught "hp validation skip" ~rule:"use-after-free"
          (hp_sweep true) ~replay:(fun schedule ->
            Reclaim.with_oracle (fun () ->
                Sched.Explore.replay ~threads:2 ~schedule
                  (Reclaim.instrument ~threads:2 (hp_factory true)))));
    tc "seeded wfrc over-release is caught and replays" (fun () ->
        assert_clean "over-release control" (overrelease_explore false);
        assert_caught "over-release" ~rule:"use-after-free"
          (overrelease_explore true) ~replay:(fun schedule ->
            Reclaim.with_oracle (fun () ->
                Sched.Explore.replay ~threads:2 ~schedule
                  (Reclaim.instrument ~threads:2 (overrelease_factory true)))));
    tc "seeded dropped release is caught as a leak" (fun () ->
        assert_clean "leak control" (leak_explore false);
        assert_caught "dropped release" ~rule:"leak" (leak_explore true)
          ~replay:(fun schedule ->
            Reclaim.with_oracle (fun () ->
                Sched.Explore.replay ~threads:2 ~schedule
                  (Reclaim.instrument ~expect_all_free:true ~threads:2
                     (leak_factory true)))));
  ]

let suite =
  hb_tests @ instr_tests @ oracle_tests @ report_tests @ manager_tests
  @ mutation_tests
