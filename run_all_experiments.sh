#!/bin/sh
# Regenerate every experiment table at full size (EXPERIMENTS.md data).
# Usage: ./run_all_experiments.sh [--quick]
exec dune exec bin/wfrc_bench.exe -- run all "$@"
