(* A real-time flavoured job scheduler — the motivating scenario of
   the paper's introduction: tasks on different processors coordinate
   through a shared dynamic data structure, and the memory manager
   underneath must never block or starve anyone.

   Producers submit jobs with deadlines into the wait-free-managed
   priority queue (priority = deadline); workers repeatedly pull the
   most urgent job and "execute" it. We report how many jobs met their
   deadline and the queueing-delay distribution.

   Run with:  dune exec examples/job_scheduler.exe *)

module Mm = Mm_intf

let producers = 2
let workers = 2
let threads = producers + workers
let jobs_per_producer = 2_000
let total_jobs = producers * jobs_per_producer

let () =
  let cfg =
    Mm.config ~threads ~capacity:(1 lsl 14) ~num_links:6 ~num_data:3
      ~num_roots:1 ()
  in
  let mm = Harness.Registry.instantiate "wfrc" cfg in
  let pq = Structures.Pqueue.create mm ~seed:2024 ~tid:0 in
  let submitted = Atomic.make 0 in
  let executed = Atomic.make 0 in
  let met = Atomic.make 0 in
  let delays = Array.init threads (fun _ -> Harness.Metrics.Hist.create ()) in
  let t_start = Harness.Runner.now_ns () in
  (* Slack must cover OS time slices: with producers and workers
     multiplexed onto one core, a job can sit for a few scheduler
     quanta before any worker runs. *)
  let deadline_slack_ns = 50_000_000 (* 50ms *) in
  ignore
    (Harness.Runner.run ~threads (fun ~tid ->
         if tid < producers then begin
           (* Producer: submit jobs with near-future deadlines. *)
           let rng = Sched.Rng.create (500 + tid) in
           for _ = 1 to jobs_per_producer do
             let now = Harness.Runner.now_ns () - t_start in
             let deadline = now + deadline_slack_ns in
             (* key = deadline in us (fits comfortably in a data word);
                value = submission time in us. *)
             (try
                Structures.Pqueue.insert pq ~tid (deadline / 1000)
                  (now / 1000);
                Atomic.incr submitted
              with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ());
             (* small think time *)
             for _ = 1 to Sched.Rng.int rng 50 do
               Domain.cpu_relax ()
             done
           done
         end
         else begin
           (* Worker: drain most-urgent-first until producers finish
              and the queue is empty. *)
           let h = delays.(tid) in
           let rec serve idle =
             match Structures.Pqueue.delete_min pq ~tid with
             | Some (deadline_us, submit_us) ->
                 let now_us =
                   (Harness.Runner.now_ns () - t_start) / 1000
                 in
                 Harness.Metrics.Hist.add h ((now_us - submit_us) * 1000);
                 if now_us <= deadline_us then Atomic.incr met;
                 Atomic.incr executed;
                 serve 0
             | None ->
                 if Atomic.get executed >= total_jobs then ()
                 else if
                   Atomic.get submitted < total_jobs || idle < 100_000
                 then begin
                   Domain.cpu_relax ();
                   serve (idle + 1)
                 end
                 else ()
           in
           serve 0
         end));
  let h = Harness.Metrics.Hist.create () in
  Array.iter (fun h' -> Harness.Metrics.Hist.merge_into h h') delays;
  Printf.printf "jobs submitted: %d\n" (Atomic.get submitted);
  Printf.printf "jobs executed:  %d\n" (Atomic.get executed);
  Printf.printf "deadlines met:  %d (%.1f%%)\n" (Atomic.get met)
    (100.0 *. float_of_int (Atomic.get met)
    /. float_of_int (max 1 (Atomic.get executed)));
  Printf.printf "queueing delay: p50=%s p99=%s max=%s\n"
    (Harness.Metrics.ns_to_string (Harness.Metrics.Hist.percentile h 0.5))
    (Harness.Metrics.ns_to_string (Harness.Metrics.Hist.percentile h 0.99))
    (Harness.Metrics.ns_to_string (Harness.Metrics.Hist.max_value h));
  (* Teardown: everything back to the free-list, zero leaks. *)
  let leftovers = Structures.Pqueue.drain pq ~tid:0 in
  Mm.validate mm;
  Printf.printf "leftover jobs drained: %d; free nodes: %d/%d (2 sentinels)\n"
    (List.length leftovers) (Mm.free_count mm) cfg.capacity
