(* A concurrent dictionary cache on the lock-free hash map — the
   workload where the §1 applicability boundary becomes practical
   advice. The same cache code runs on every reclamation scheme; the
   run prints a side-by-side hit-rate/throughput table so the schemes
   can be compared on read-heavy traffic.

   Run with:  dune exec examples/dictionary_cache.exe *)

module Mm = Mm_intf

let threads = 4
let ops_per_thread = 4_000
let key_space = 1_024

let run_cache scheme =
  let cfg =
    Mm.config ~threads ~capacity:8_192 ~num_links:1 ~num_data:2 ~num_roots:0
      ()
  in
  let mm = Harness.Registry.instantiate scheme cfg in
  let cache = Structures.Hmap.create mm ~buckets:64 ~tid:0 in
  (* warm the cache to ~50% *)
  let rng = Sched.Rng.create 11 in
  for _ = 1 to key_space / 2 do
    ignore
      (Structures.Hmap.insert cache ~tid:0 (1 + Sched.Rng.int rng key_space) 1)
  done;
  let hits = Array.make threads 0 in
  let misses = Array.make threads 0 in
  let result =
    Harness.Runner.run ~threads (fun ~tid ->
        let rng = Sched.Rng.create (100 + tid) in
        for _ = 1 to ops_per_thread do
          let k = 1 + Sched.Rng.int rng key_space in
          match Sched.Rng.int rng 10 with
          | 0 -> (
              (* fill *)
              try ignore (Structures.Hmap.insert cache ~tid k tid)
              with Mm.Out_of_memory | Mm.Out_of_nodes _ -> ())
          | 1 ->
              (* invalidate *)
              ignore (Structures.Hmap.remove cache ~tid k)
          | _ -> (
              (* lookup-dominated traffic *)
              match Structures.Hmap.lookup cache ~tid k with
              | Some _ -> hits.(tid) <- hits.(tid) + 1
              | None -> misses.(tid) <- misses.(tid) + 1)
        done)
  in
  let h = Array.fold_left ( + ) 0 hits
  and m = Array.fold_left ( + ) 0 misses in
  Printf.printf "%-8s %6s ops/s   hit-rate %4.1f%%   entries %4d\n" scheme
    (Harness.Metrics.ops_to_string
       (Harness.Runner.throughput ~ops:(threads * ops_per_thread) result))
    (100.0 *. float_of_int h /. float_of_int (max 1 (h + m)))
    (Structures.Hmap.size cache ~tid:0);
  (* teardown accounting: everything back except bucket sentinels *)
  ignore (Structures.Hmap.clear cache ~tid:0);
  for _ = 1 to 200 do
    Mm.enter_op mm ~tid:0;
    Mm.exit_op mm ~tid:0
  done;
  Mm.validate mm;
  assert (Mm.free_count mm = cfg.capacity - (2 * 64))

let () =
  Printf.printf
    "dictionary cache: %d threads, %d ops each, 80%% lookups, on every \
     scheme\n"
    threads ops_per_thread;
  List.iter run_cache Harness.Registry.names;
  print_endline "all schemes validated, zero leaks."
