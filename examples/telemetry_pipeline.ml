(* A telemetry pipeline: bursty producers push samples through the
   Michael–Scott queue while a consumer aggregates them. The same
   client code runs on every memory-management scheme in the registry
   — that drop-in compatibility is the §3.2 design goal — and the
   example prints the per-scheme throughput and allocator traffic so
   the schemes can be eyeballed side by side.

   Run with:  dune exec examples/telemetry_pipeline.exe *)

module Mm = Mm_intf

let producers = 3
let threads = producers + 1
let samples_per_producer = 4_000

let run_pipeline scheme =
  let cfg =
    Mm.config ~threads ~capacity:4096 ~num_links:1 ~num_data:1 ~num_roots:2 ()
  in
  let mm = Harness.Registry.instantiate scheme cfg in
  let q = Structures.Queue.create mm ~head_root:0 ~tail_root:1 ~tid:0 in
  let produced = Atomic.make 0 in
  let consumed = Atomic.make 0 in
  let sum = Atomic.make 0 in
  let result =
    Harness.Runner.run ~threads (fun ~tid ->
        if tid < producers then begin
          let rng = Sched.Rng.create (900 + tid) in
          let sent = ref 0 in
          while !sent < samples_per_producer do
            (* bursts of 1..32 samples *)
            let burst =
              min (1 + Sched.Rng.int rng 32) (samples_per_producer - !sent)
            in
            for _ = 1 to burst do
              let v = 1 + Sched.Rng.int rng 1000 in
              (try
                 Structures.Queue.enqueue q ~tid v;
                 incr sent;
                 Atomic.incr produced
               with Mm.Out_of_memory | Mm.Out_of_nodes _ ->
                 (* queue full: drop the sample, as a real pipeline
                    under backpressure would *)
                 incr sent)
            done;
            for _ = 1 to Sched.Rng.int rng 200 do
              Domain.cpu_relax ()
            done
          done
        end
        else begin
          let idle = ref 0 in
          let target = producers * samples_per_producer in
          while Atomic.get consumed < Atomic.get produced
                || Atomic.get produced < target && !idle < 1_000_000 do
            match Structures.Queue.dequeue q ~tid with
            | Some v ->
                idle := 0;
                Atomic.incr consumed;
                ignore (Atomic.fetch_and_add sum v)
            | None ->
                incr idle;
                Domain.cpu_relax ()
          done
        end)
  in
  let leftovers = List.length (Structures.Queue.drain q ~tid:0) in
  Mm.validate mm;
  let ctr = Mm.counters mm in
  Printf.printf
    "%-8s produced=%5d consumed=%5d leftover=%3d  %6s samples/s  \
     (allocs=%d frees=%d free-now=%d/%d)\n"
    scheme (Atomic.get produced) (Atomic.get consumed) leftovers
    (Harness.Metrics.ops_to_string
       (Harness.Runner.throughput ~ops:(Atomic.get consumed) result))
    (Atomics.Counters.total ctr Alloc)
    (Atomics.Counters.total ctr Node_reclaimed)
    (Mm.free_count mm) cfg.capacity

let () =
  print_endline
    "telemetry pipeline: 3 bursty producers -> MS queue -> 1 aggregator";
  print_endline
    "same client code on every scheme (the paper's compatibility claim):";
  List.iter run_pipeline Harness.Registry.names
