(* The paper's closing argument, §5: "the main strength of wait-free
   algorithms is not in high average performance, but rather in
   reliable execution guarantees".

   This example pits one latency-sensitive reader against hostile
   writers that flip a shared link as fast as they can, and compares
   the reader's de-reference latency distribution across schemes. The
   wait-free scheme's reader cost is bounded by construction (Lemma
   6); the Valois-style reader retries whenever a flip lands inside
   its read-validate window; the lock-based reader waits for writers'
   critical sections.

   It also reruns the duel under the deterministic scheduler, where
   the bound is exact in atomic steps rather than wall-clock noise.

   Run with:  dune exec examples/realtime_latency.exe *)

module Mm = Mm_intf
module Value = Shmem.Value

let writers = 3
let threads = writers + 1
let reads = 20_000
let flips_per_writer = 30_000

let duel scheme =
  let cfg =
    Mm.config ~threads ~capacity:256 ~num_links:1 ~num_data:1 ~num_roots:1 ()
  in
  let mm = Harness.Registry.instantiate scheme cfg in
  let arena = Mm.arena mm in
  let root = Shmem.Arena.root_addr arena 0 in
  let a = Mm.alloc mm ~tid:0 in
  Mm.store_link mm ~tid:0 root a;
  Mm.release mm ~tid:0 a;
  let h = Harness.Metrics.Hist.create () in
  let stop = Atomic.make false in
  ignore
    (Harness.Runner.run ~threads (fun ~tid ->
         if tid = 0 then begin
           (* the latency-sensitive reader *)
           for _ = 1 to reads do
             let t0 = Harness.Runner.now_ns () in
             Mm.enter_op mm ~tid;
             let p = Mm.deref mm ~tid root in
             if not (Value.is_null p) then Mm.release mm ~tid p;
             Mm.exit_op mm ~tid;
             Harness.Metrics.Hist.add h (Harness.Runner.now_ns () - t0)
           done;
           Atomic.set stop true
         end
         else begin
           (* hostile writers *)
           let i = ref 0 in
           while (not (Atomic.get stop)) && !i < flips_per_writer do
             incr i;
             Mm.enter_op mm ~tid;
             (match Mm.alloc mm ~tid with
             | b ->
                 let old = Mm.deref mm ~tid root in
                 let ok = Mm.cas_link mm ~tid root ~old ~nw:b in
                 if not (Value.is_null old) then begin
                   Mm.release mm ~tid old;
                   if ok then Mm.terminate mm ~tid old
                 end;
                 Mm.release mm ~tid b
             | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ());
             Mm.exit_op mm ~tid
           done
         end));
  let ctr = Mm.counters mm in
  Printf.printf
    "%-8s reader deref: p50=%-7s p99=%-7s p99.9=%-8s max=%-8s retries=%d\n"
    scheme
    (Harness.Metrics.ns_to_string (Harness.Metrics.Hist.percentile h 0.5))
    (Harness.Metrics.ns_to_string (Harness.Metrics.Hist.percentile h 0.99))
    (Harness.Metrics.ns_to_string (Harness.Metrics.Hist.percentile h 0.999))
    (Harness.Metrics.ns_to_string (Harness.Metrics.Hist.max_value h))
    (Atomics.Counters.total ctr Deref_retry)

(* The same duel with exact step accounting (no wall-clock noise):
   max scheduler steps the reader needs for ONE deref while a writer
   flips the link under an adversarial schedule. *)
let exact_steps scheme =
  let worst = ref 0 in
  for s = 0 to 19 do
    let cfg =
      Mm.config ~threads:2 ~capacity:64 ~num_links:1 ~num_data:1 ~num_roots:1
        ()
    in
    let mm = Harness.Registry.instantiate scheme cfg in
    let arena = Mm.arena mm in
    let root = Shmem.Arena.root_addr arena 0 in
    let a = Mm.alloc mm ~tid:0 in
    Mm.store_link mm ~tid:0 root a;
    Mm.release mm ~tid:0 a;
    let body tid =
      if tid = 0 then begin
        let p = Mm.deref mm ~tid root in
        if not (Value.is_null p) then Mm.release mm ~tid p
      end
      else
        for _ = 1 to 32 do
          match Mm.alloc mm ~tid with
          | b ->
              let old = Mm.deref mm ~tid root in
              ignore (Mm.cas_link mm ~tid root ~old ~nw:b);
              if not (Value.is_null old) then Mm.release mm ~tid old;
              Mm.release mm ~tid b
          | exception Mm.Out_of_memory | exception Mm.Out_of_nodes _ -> ()
        done
    in
    let policy = Sched.Policy.biased ~seed:(7000 + s) ~victim:0 ~weight:6 in
    let outcome = Sched.Engine.run ~threads:2 ~policy body in
    if outcome.steps.(0) > !worst then worst := outcome.steps.(0)
  done;
  Printf.printf "%-8s worst-case reader steps for one deref: %d\n" scheme
    !worst

let () =
  Printf.printf
    "1 reader vs %d hostile writers flipping a shared link (wall clock):\n"
    writers;
  List.iter duel [ "wfrc"; "lfrc"; "lockrc" ];
  print_endline "";
  print_endline
    "same duel under the deterministic scheduler (exact atomic steps):";
  List.iter exact_steps [ "wfrc"; "lfrc"; "lockrc" ];
  print_endline "";
  print_endline
    "wfrc's bound is independent of writer aggression (Lemma 6); the \
     lock-free reader's retries and the lock-based reader's waits are \
     not."
