(* CLI for the reclamation-protocol lint. Exit 0 when the tree is
   clean, 1 when any violation is found, 2 on usage errors — CI runs
   `wfrc_lint lib` as a blocking job.

   Usage: wfrc_lint [--pass NAME]... [--json=FILE] [--list-passes] [PATH]...

   With no --pass, every registered pass runs. When the progress pass
   is selected, the full classification table (every loop/recursion
   cycle with its bounding evidence) and the expected-unbounded
   assertions are printed before any violations. --json writes the
   findings in the same shape as the REPORT_*.json experiment sinks,
   so CI can archive them next to the experiment reports. *)

let usage () =
  prerr_endline
    "usage: wfrc_lint [--pass NAME]... [--json=FILE] [--list-passes] [PATH]...";
  prerr_endline "passes:";
  List.iter
    (fun (n, doc) -> Printf.eprintf "  %-16s %s\n" n doc)
    Lint.passes;
  exit 2

(* ---- JSON in the REPORT_*.json sink shape ------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""

let write_json ~file ~passes ~(report : Lint.Progress.report option) vs =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let col name role =
        Printf.sprintf "{\"name\":%s,\"role\":%s}" (json_str name)
          (json_str role)
      in
      let row (v : Lint.violation) =
        Printf.sprintf
          "{\"file\":%s,\"line\":%d,\"rule\":%s,\"message\":%s}"
          (json_str v.file) v.line (json_str v.rule) (json_str v.msg)
      in
      let cls_row (c : Lint.Progress.cls) =
        Printf.sprintf
          "{\"file\":%s,\"line\":%d,\"function\":%s,\"kind\":%s,\"level\":%s,\"evidence\":%s}"
          (json_str c.c_file) c.c_line (json_str c.c_func) (json_str c.c_kind)
          (json_str (Lint.Progress.level_name c.c_level))
          (json_str c.c_evidence)
      in
      let extra =
        match report with
        | None -> ""
        | Some r ->
            Printf.sprintf
              ",\"progress\":{\"files\":[%s],\"classifications\":[%s],\"expectations\":[%s]}"
              (String.concat ","
                 (List.map
                    (fun (f, c) ->
                      Printf.sprintf "{\"file\":%s,\"contract\":%s}"
                        (json_str f)
                        (json_str (Lint.Progress.contract_name c)))
                    r.files))
              (String.concat "," (List.map cls_row r.classifications))
              (String.concat ","
                 (List.map
                    (fun (f, fn, ok) ->
                      Printf.sprintf
                        "{\"file\":%s,\"function\":%s,\"satisfied\":%b}"
                        (json_str f) (json_str fn) ok)
                    r.expectations))
      in
      Printf.fprintf oc
        "{\"id\":\"lint\",\"title\":\"wfrc_lint findings\",\"meta\":{\"quick\":false,\"seed\":null,\"backend\":null,\"params\":{\"passes\":%s}},\"columns\":[%s],\"rows\":[%s]%s}\n"
        (json_str (String.concat "," passes))
        (String.concat ","
           [
             col "file" "dim"; col "line" "dim"; col "rule" "dim";
             col "message" "measure";
           ])
        (String.concat "," (List.map row vs))
        extra)

(* ---- Argument parsing --------------------------------------------- *)

let () =
  let roots = ref [] and sel = ref [] and json = ref None in
  let rec parse = function
    | [] -> ()
    | "--list-passes" :: _ ->
        List.iter
          (fun (n, doc) -> Printf.printf "%-16s %s\n" n doc)
          Lint.passes;
        exit 0
    | "--pass" :: p :: rest ->
        sel := p :: !sel;
        parse rest
    | "--json" :: f :: rest ->
        json := Some f;
        parse rest
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--pass=" ->
        sel := String.sub a 7 (String.length a - 7) :: !sel;
        parse rest
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--json=" ->
        json := Some (String.sub a 7 (String.length a - 7));
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | a :: _ when String.length a > 1 && a.[0] = '-' ->
        Printf.eprintf "wfrc_lint: unknown option %s\n" a;
        usage ()
    | a :: rest ->
        roots := a :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = match List.rev !roots with [] -> [ "lib" ] | r -> r in
  let passes =
    match List.rev !sel with [] -> Lint.pass_names | ps -> ps
  in
  List.iter
    (fun p ->
      if not (List.mem p Lint.pass_names) then begin
        Printf.eprintf "wfrc_lint: unknown pass %S\n" p;
        usage ()
      end)
    passes;
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    List.iter (Printf.eprintf "wfrc_lint: no such path: %s\n") missing;
    exit 2
  end;
  let progress_report =
    if List.mem "progress" passes then Some (Lint.Progress.analyze ~roots)
    else None
  in
  (match progress_report with
  | None -> ()
  | Some r ->
      List.iter
        (fun (f, c) ->
          Printf.printf "progress: %s declares %s\n" f
            (Lint.Progress.contract_name c))
        r.files;
      List.iter
        (fun c -> print_endline ("progress: " ^ Lint.Progress.pp_cls c))
        r.classifications;
      List.iter
        (fun (f, fn, ok) ->
          Printf.printf "progress: %s: '%s' expected-unbounded: %s\n" f fn
            (if ok then "holds (still unbounded/retry)" else "VIOLATED"))
        r.expectations);
  let vs = Lint.run_passes ~passes ~roots in
  (match !json with
  | Some f -> write_json ~file:f ~passes ~report:progress_report vs
  | None -> ());
  match vs with
  | [] ->
      print_endline "wfrc_lint: clean";
      exit 0
  | vs ->
      List.iter (fun v -> print_endline (Lint.to_string v)) vs;
      Printf.printf "wfrc_lint: %d violation%s\n" (List.length vs)
        (if List.length vs = 1 then "" else "s");
      exit 1
