(* CLI for the reclamation-protocol lint. Exit 0 when the tree is
   clean, 1 when any violation is found — CI runs `wfrc_lint lib` as
   a blocking job. *)

let () =
  let roots =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "lib" ] | _ :: r -> r
  in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    List.iter (Printf.eprintf "wfrc_lint: no such path: %s\n") missing;
    exit 2
  end;
  match Lint.run ~roots with
  | [] ->
      print_endline "wfrc_lint: clean";
      exit 0
  | vs ->
      List.iter (fun v -> print_endline (Lint.to_string v)) vs;
      Printf.printf "wfrc_lint: %d violation%s\n" (List.length vs)
        (if List.length vs = 1 then "" else "s");
      exit 1
