(* Experiment CLI: regenerate any experiment table from DESIGN.md §4.

     wfrc_bench run e1                  full-size E1
     wfrc_bench run all --quick         everything, small parameters
     wfrc_bench run all --quick --json  + one REPORT_<id>.json each
     wfrc_bench bench                   backend benchmark -> BENCH_wfrc.json
     wfrc_bench list                    experiment index
     wfrc_bench schemes                 memory-manager registry

   The experiment index, the id list in --help and the `list` command
   are all derived from the spec registry (Harness.Experiments.specs);
   output formats are the Harness.Sink renderers. *)

open Cmdliner

let run_experiments ids quick csv format json_dir =
  let ids =
    match ids with
    | [ "all" ] | [] -> Harness.Experiments.ids
    | ids -> ids
  in
  (* --csv is the historical spelling of --format=csv. *)
  let sink = if csv then Harness.Sink.Csv else format in
  try
    List.iter
      (fun id ->
        let r = Harness.Experiments.run ~quick id in
        Harness.Sink.print sink r;
        match json_dir with
        | None -> ()
        | Some dir ->
            let path = Harness.Sink.write_json ~dir r in
            Printf.eprintf "wrote %s\n%!" path)
      ids;
    0
  with Invalid_argument msg | Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    1

let ids_arg =
  let doc =
    Printf.sprintf "Experiment ids (%s), or 'all'."
      (String.concat " " Harness.Experiments.ids)
  in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)

let quick_arg =
  let doc = "Small parameters (seconds instead of minutes)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let csv_arg =
  let doc = "Emit CSV instead of an aligned table (same as --format=csv)." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let format_arg =
  let doc =
    Printf.sprintf "Output format, one of %s."
      (String.concat ", "
         (List.map (fun (n, _) -> Printf.sprintf "$(b,%s)" n) Harness.Sink.all))
  in
  Arg.(
    value
    & opt (enum Harness.Sink.all) Harness.Sink.Table
    & info [ "format"; "f" ] ~docv:"FORMAT" ~doc)

let json_arg =
  let doc =
    "Also write one REPORT_<id>.json per experiment into $(docv) \
     (default: the current directory)."
  in
  Arg.(
    value
    & opt ~vopt:(Some ".") (some string) None
    & info [ "json" ] ~docv:"DIR" ~doc)

let run_cmd =
  let doc = "Run experiments and print their tables" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run_experiments $ ids_arg $ quick_arg $ csv_arg $ format_arg
      $ json_arg)

(* The deferred-rc gate riding --check-scaling: at the read-heaviest
   E17 mix, eager wfrc's shared-counter FAA traffic must stay >= 5x
   wfrc_deferred's (DESIGN.md §6.3). Measured on the Sim backend via
   the reclamation oracle's access tally, so it is deterministic and
   safe to gate on in CI. *)
let check_faa_reduction () =
  let eager, deferred = Harness.Exp_deferred.faa_traffic () in
  if eager >= 5 * max 1 deferred then begin
    Printf.printf
      "faa reduction ok: eager wfrc %d arena FAAs >= 5x deferred %d\n" eager
      deferred;
    0
  end
  else begin
    Printf.eprintf
      "bench: deferred-rc regression: eager wfrc %d arena FAAs < 5x \
       wfrc_deferred %d on the read-heavy mix\n"
      eager deferred;
    1
  end

(* The CI scaling gate: compare the best Native ops/s at the lowest
   and highest measured domain counts; an inversion (fewer ops/s with
   more domains) fails the run. Any Native point counts — legacy or
   sharded, boxed or unboxed — so the gate asks "does the best
   configuration at 4 domains beat the best at 1?", which is the
   question the scaling work answers on multi-core hardware. *)
let check_scaling (points : Harness.Bench.point list) =
  let native =
    List.filter
      (fun (p : Harness.Bench.point) -> p.backend = Atomics.Backend.Native)
      points
  in
  match native with
  | [] ->
      Printf.eprintf "bench: --check-scaling: no native points measured\n";
      1
  | _ ->
      let ts = List.map (fun (p : Harness.Bench.point) -> p.threads) native in
      let lo = List.fold_left min max_int ts
      and hi = List.fold_left max min_int ts in
      let best t =
        List.fold_left
          (fun acc (p : Harness.Bench.point) ->
            if p.threads = t then max acc p.ops_per_sec else acc)
          0. native
      in
      let blo = best lo and bhi = best hi in
      if hi <= lo then begin
        Printf.eprintf
          "bench: --check-scaling: only one domain count measured (%d)\n" lo;
        0
      end
      else if bhi < blo then begin
        Printf.eprintf
          "bench: scaling inversion: best native throughput %.0f ops/s at \
           %d domains < %.0f ops/s at %d domain%s\n"
          bhi hi blo lo
          (if lo = 1 then "" else "s");
        1
      end
      else begin
        Printf.printf
          "scaling ok: best native %.0f ops/s at %d domains >= %.0f ops/s \
           at %d\n"
          bhi hi blo lo;
        0
      end

let run_bench schemes quick out format json_dir scaling actor =
  let schemes =
    match schemes with [] -> [ "wfrc" ] | schemes -> schemes
  in
  (* Enough pairs that domain spawn/join and cache warm-up are noise:
     at ~8M pairs/s a 200k-pair run is ~25ms of measured loop against
     ~1ms of setup; 50k runs were dominated by it at 4 domains. *)
  let ops = if quick then 10_000 else 200_000 in
  let threads_list = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  try
    let spine = Harness.Exp_support.Spine.create () in
    let points =
      Harness.Bench.run_suite ~spine ~schemes ~threads_list ~ops ()
    in
    (* One actor-service point per scheme at the highest domain count:
       the same managers driven through Actor.Service send/receive
       traffic, keyed "<scheme>+actor" next to the churn points. *)
    let points =
      if not actor then points
      else
        let threads = List.fold_left max 1 threads_list in
        let actors = if quick then 1_024 else 10_000 in
        points
        @ List.map
            (fun scheme ->
              Harness.Bench.run_actor_point ~spine ~threads ~actors ~ops
                ~scheme ())
            schemes
    in
    let report =
      Harness.Bench.report
        ~counters:(Harness.Exp_support.Spine.totals spine)
        points
    in
    Harness.Sink.print format report;
    Harness.Bench.write_json ~path:out points;
    Printf.printf "wrote %s\n" out;
    (match json_dir with
    | None -> ()
    | Some dir ->
        let path = Harness.Sink.write_json ~dir report in
        Printf.printf "wrote %s\n" path);
    if scaling then
      let rc1 = check_scaling points in
      let rc2 = check_faa_reduction () in
      max rc1 rc2
    else 0
  with
  | Invalid_argument msg | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1

let bench_cmd =
  let doc =
    "Benchmark the sim vs native memory backends (alloc/release churn) \
     and write machine-readable results"
  in
  let schemes_arg =
    let doc = "Schemes to benchmark (default: wfrc)." in
    Arg.(value & pos_all string [] & info [] ~docv:"SCHEME" ~doc)
  in
  let out_arg =
    let doc = "Output JSON path." in
    Arg.(
      value
      & opt string "BENCH_wfrc.json"
      & info [ "o"; "output" ] ~docv:"PATH" ~doc)
  in
  let scaling_arg =
    let doc =
      "Fail (exit 1) if the best native throughput at the highest domain \
       count is below the best at the lowest — the multi-core scaling \
       gate CI runs."
    in
    Arg.(value & flag & info [ "check-scaling" ] ~doc)
  in
  let actor_arg =
    let doc =
      "Also measure one actor-service point per scheme (Native, highest \
       domain count): send/receive traffic against a pre-spawned \
       Actor.Service, keyed \"<scheme>+actor\" in the output JSON."
    in
    Arg.(value & flag & info [ "actor" ] ~doc)
  in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(
      const run_bench $ schemes_arg $ quick_arg $ out_arg $ format_arg
      $ json_arg $ scaling_arg $ actor_arg)

let list_cmd =
  let doc = "List the experiment index" in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun (s : Harness.Exp.spec) ->
              Printf.printf "  %-4s %s\n" s.Harness.Exp.id s.Harness.Exp.descr)
            Harness.Experiments.specs;
          0)
      $ const ())

let schemes_cmd =
  let doc = "List the registered memory-management schemes" in
  Cmd.v (Cmd.info "schemes" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun name ->
              Printf.printf "  %-8s%s\n" name
                (if List.mem name Harness.Registry.rc_names then
                   " (reference counting: supports arbitrary structures)"
                 else " (retire-based: fixed-reference structures only)"))
            Harness.Registry.names;
          0)
      $ const ())

let main_cmd =
  let doc =
    "Reproduction harness for 'Wait-Free Reference Counting and Memory \
     Management' (Sundell, 2005)"
  in
  Cmd.group
    (Cmd.info "wfrc_bench" ~version:"1.0.0" ~doc)
    [ run_cmd; bench_cmd; list_cmd; schemes_cmd ]

let () = exit (Cmd.eval' main_cmd)
