(* Experiment CLI: regenerate any experiment table from DESIGN.md §4.

     wfrc_bench run e1            full-size E1
     wfrc_bench run all --quick   everything, small parameters
     wfrc_bench bench             backend benchmark -> BENCH_wfrc.json
     wfrc_bench list              experiment index
     wfrc_bench schemes           memory-manager registry *)

open Cmdliner

let run_experiments ids quick csv =
  let ids =
    match ids with
    | [ "all" ] | [] -> Harness.Experiments.ids
    | ids -> ids
  in
  try
    List.iter
      (fun id ->
        let r = Harness.Experiments.run ~quick id in
        Harness.Experiments.print ~csv r)
      ids;
    0
  with Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    1

let ids_arg =
  let doc =
    "Experiment ids (e1 e2 e3 e4 e5 e7 e8 e9 e10 e11 e12 e13 a1 a2 a3), or \
     'all'."
  in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)

let quick_arg =
  let doc = "Small parameters (seconds instead of minutes)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let csv_arg =
  let doc = "Emit CSV instead of an aligned table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let run_cmd =
  let doc = "Run experiments and print their tables" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(const run_experiments $ ids_arg $ quick_arg $ csv_arg)

let run_bench schemes quick out =
  let schemes =
    match schemes with [] -> [ "wfrc" ] | schemes -> schemes
  in
  let ops = if quick then 10_000 else 50_000 in
  let threads_list = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  try
    let points = Harness.Bench.run_suite ~schemes ~threads_list ~ops () in
    Harness.Experiments.print (Harness.Bench.report points);
    Harness.Bench.write_json ~path:out points;
    Printf.printf "wrote %s\n" out;
    0
  with
  | Invalid_argument msg | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1

let bench_cmd =
  let doc =
    "Benchmark the sim vs native memory backends (alloc/release churn) \
     and write machine-readable results"
  in
  let schemes_arg =
    let doc = "Schemes to benchmark (default: wfrc)." in
    Arg.(value & pos_all string [] & info [] ~docv:"SCHEME" ~doc)
  in
  let out_arg =
    let doc = "Output JSON path." in
    Arg.(
      value
      & opt string "BENCH_wfrc.json"
      & info [ "o"; "output" ] ~docv:"PATH" ~doc)
  in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(const run_bench $ schemes_arg $ quick_arg $ out_arg)

let list_cmd =
  let doc = "List the experiment index" in
  let descriptions =
    [
      ("e1", "priority-queue throughput per scheme (paper §5)");
      ("e2", "bounded DeRefLink steps vs adversary budget (Lemmas 6-10)");
      ("e3", "wait-free free-list vs Treiber free-list churn (§3.1)");
      ("e4", "WFRC helping-rate accounting (§3)");
      ("e5", "per-op latency tails (the real-time argument, §5)");
      ("e7", "linearizability sweeps (Definition 1, Lemmas 2-5)");
      ("e8", "exhaustion/OOM behaviour (footnote 4)");
      ("e9", "ordered-set throughput on all schemes (the §1 boundary)");
      ("e10", "crash tolerance: blocking vs non-blocking (§1)");
      ("e11", "metadata space vs thread count (the O(N^2) pool)");
      ("e12", "crash tolerance: audited bounded loss vs unbounded leak");
      ("e13", "stall storm: survivor own-step bounds (wait-freedom)");
      ("a1", "ablation: deref step bound vs thread count");
      ("a2", "ablation: FreeNode placement heuristic (F5-F6)");
      ("a3", "ablation: allocation helping on/off (A11-A15)");
    ]
  in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun (id, d) -> Printf.printf "  %-4s %s\n" id d)
            descriptions;
          0)
      $ const ())

let schemes_cmd =
  let doc = "List the registered memory-management schemes" in
  Cmd.v (Cmd.info "schemes" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun name ->
              Printf.printf "  %-8s%s\n" name
                (if List.mem name Harness.Registry.rc_names then
                   " (reference counting: supports arbitrary structures)"
                 else " (retire-based: fixed-reference structures only)"))
            Harness.Registry.names;
          0)
      $ const ())

let main_cmd =
  let doc =
    "Reproduction harness for 'Wait-Free Reference Counting and Memory \
     Management' (Sundell, 2005)"
  in
  Cmd.group
    (Cmd.info "wfrc_bench" ~version:"1.0.0" ~doc)
    [ run_cmd; bench_cmd; list_cmd; schemes_cmd ]

let () = exit (Cmd.eval' main_cmd)
